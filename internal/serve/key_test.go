package serve

import (
	"strings"
	"testing"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

func testCell() bench.Cell {
	cfg := hw.DefaultConfig()
	cfg.Functional = false
	return bench.Cell{
		Experiment: "fig6", Series: "one core",
		Cfg: cfg, Kind: bench.CellBcast, Algo: mpi.BcastTorusShaddr,
		Arg: 64 << 10, Iters: 5,
	}
}

func TestKeyStable(t *testing.T) {
	a, b := testCell(), testCell()
	if KeyCell(a) != KeyCell(b) {
		t.Fatal("identical cells keyed differently")
	}
	if CanonicalCell(a) != CanonicalCell(b) {
		t.Fatal("identical cells canonicalized differently")
	}
	if !strings.HasPrefix(CanonicalCell(a), "v="+keyVersion+"\n") {
		t.Fatalf("canonical form missing version prefix:\n%s", CanonicalCell(a))
	}
	if len(KeyCell(a)) != 16 {
		t.Fatalf("key %q is not a 16-hex digest", KeyCell(a))
	}
}

// TestKeyExcludesLabels pins the physics-only property: the experiment and
// series labels never influence the key, so a fig6 cell and an identical
// ad-hoc request share one cache line.
func TestKeyExcludesLabels(t *testing.T) {
	a, b := testCell(), testCell()
	b.Experiment, b.Series = "adhoc", "whatever"
	if KeyCell(a) != KeyCell(b) {
		t.Fatal("labels leaked into the cache key")
	}
}

// TestKeySensitivity mutates each cache-relevant input and checks the key
// moves — including a deep Params field, which only the reflect walk covers.
func TestKeySensitivity(t *testing.T) {
	base := KeyCell(testCell())
	muts := map[string]func(*bench.Cell){
		"kind":       func(c *bench.Cell) { c.Kind = bench.CellAllreduce; c.Algo = mpi.AllreduceTorusNew },
		"algo":       func(c *bench.Cell) { c.Algo = mpi.BcastTorusFIFO },
		"arg":        func(c *bench.Cell) { c.Arg++ },
		"iters":      func(c *bench.Cell) { c.Iters++ },
		"torus":      func(c *bench.Cell) { c.Cfg.Torus.DZ *= 2 },
		"mode":       func(c *bench.Cell) { c.Cfg.Mode = hw.SMP },
		"functional": func(c *bench.Cell) { c.Cfg.Functional = true },
		"shards":     func(c *bench.Cell) { c.Cfg.Shards = 4 },
		"param-int":  func(c *bench.Cell) { c.Cfg.Params.TLBSlots++ },
		"param-f64":  func(c *bench.Cell) { c.Cfg.Params.TorusLinkBps *= 1.0000001 },
		"param-bool": func(c *bench.Cell) { c.Cfg.Params.MapCacheEnabled = !c.Cfg.Params.MapCacheEnabled },
	}
	for name, mut := range muts {
		c := testCell()
		mut(&c)
		if KeyCell(c) == base {
			t.Errorf("mutation %q did not change the key", name)
		}
	}
}

func TestRederiveKeyMatches(t *testing.T) {
	c := testCell()
	if rederiveKey(CanonicalCell(c)) != KeyCell(c) {
		t.Fatal("rederiveKey disagrees with KeyCell")
	}
}
