// Prometheus-style metrics, stdlib only: the text exposition format is plain
// lines, so there is nothing to depend on. Counters are atomics (hot path:
// every cell classification touches one); histograms take a mutex (they are
// touched once per computed cell, which costs milliseconds anyway).
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"bgpcoll/internal/bench"
)

// latencyBucketsMS are the per-experiment compute-latency histogram bounds
// in milliseconds. Cells span ~1 ms (tiny functional configs) to seconds
// (full two-rack partitions), so the buckets are log-spaced across that.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// fingerprintBucketsMS are the steady-state fingerprint-capture latency
// bounds in milliseconds. A capture walks the kernel's pending state once —
// tens of microseconds on bench-sized worlds — so the buckets sit three
// orders of magnitude below the compute buckets.
var fingerprintBucketsMS = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// histogram is one cumulative Prometheus histogram over fixed bounds.
type histogram struct {
	bounds []float64
	counts []uint64 // per bucket, non-cumulative; rendered cumulatively
	inf    uint64
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *histogram) observe(ms float64) {
	h.sum += ms
	h.n++
	for i, ub := range h.bounds {
		if ms <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Metrics is the server's instrumentation: cache effectiveness counters,
// queue pressure gauges, and per-experiment compute-latency histograms.
type Metrics struct {
	Hits      atomic.Int64 // cells answered from the store
	Misses    atomic.Int64 // cells that required a kernel run
	Coalesced atomic.Int64 // cells that joined an in-flight identical miss
	Rejected  atomic.Int64 // requests refused with 429 (queue or client quota)

	QueueDepth atomic.Int64 // cells currently enqueued, not yet running
	InFlight   atomic.Int64 // cells currently executing on workers

	mu      sync.Mutex
	latency map[string]*histogram // by experiment id
	fp      *histogram            // fingerprint-capture wall-clock
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{latency: make(map[string]*histogram), fp: newHistogram(fingerprintBucketsMS)}
}

// ObserveCompute records the wall-clock cost of one computed (miss) cell.
func (m *Metrics) ObserveCompute(experiment string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[experiment]
	if h == nil {
		h = newHistogram(latencyBucketsMS)
		m.latency[experiment] = h
	}
	h.observe(ms)
}

// ObserveFingerprint records the wall-clock cost of one steady-state
// fingerprint capture (bench.SetFingerprintObserver feeds it).
func (m *Metrics) ObserveFingerprint(ms float64) {
	m.mu.Lock()
	m.fp.observe(ms)
	m.mu.Unlock()
}

// WriteTo renders the Prometheus text exposition format. Families and label
// values are emitted in sorted order so scrapes are deterministic.
func (m *Metrics) WriteTo(w io.Writer, store *Store) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("bgpsimd_cache_hits_total", "Cells answered from the content-addressed store.", m.Hits.Load())
	counter("bgpsimd_cache_misses_total", "Cells that required a kernel run.", m.Misses.Load())
	counter("bgpsimd_cache_coalesced_total", "Cells that joined an identical in-flight computation.", m.Coalesced.Load())
	counter("bgpsimd_rejected_total", "Requests refused for backpressure (HTTP 429).", m.Rejected.Load())
	gauge("bgpsimd_queue_depth", "Cells enqueued and waiting for a worker.", m.QueueDepth.Load())
	gauge("bgpsimd_inflight", "Cells currently executing.", m.InFlight.Load())
	counter("bgpsimd_extrapolated_iterations_total",
		"Measure-loop iterations replayed by steady-state extrapolation instead of executed.",
		bench.ExtrapolatedIters())
	if store != nil {
		gauge("bgpsimd_cache_entries", "Measurements in the store.", int64(store.Len()))
	}

	m.mu.Lock()
	ids := make([]string, 0, len(m.latency))
	for id := range m.latency {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	const hn = "bgpsimd_compute_latency_ms"
	if len(ids) > 0 {
		fmt.Fprintf(w, "# HELP %s Wall-clock cost of computed cells.\n# TYPE %s histogram\n", hn, hn)
	}
	for _, id := range ids {
		h := m.latency[id]
		var cum uint64
		for i, ub := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{experiment=%q,le=\"%g\"} %d\n", hn, id, ub, cum)
		}
		fmt.Fprintf(w, "%s_bucket{experiment=%q,le=\"+Inf\"} %d\n", hn, id, cum+h.inf)
		fmt.Fprintf(w, "%s_sum{experiment=%q} %g\n", hn, id, h.sum)
		fmt.Fprintf(w, "%s_count{experiment=%q} %d\n", hn, id, h.n)
	}
	const fn = "bgpsimd_fingerprint_ms"
	fmt.Fprintf(w, "# HELP %s Wall-clock cost of steady-state fingerprint captures.\n# TYPE %s histogram\n", fn, fn)
	var cum uint64
	for i, ub := range m.fp.bounds {
		cum += m.fp.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", fn, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fn, cum+m.fp.inf)
	fmt.Fprintf(w, "%s_sum %g\n", fn, m.fp.sum)
	fmt.Fprintf(w, "%s_count %d\n", fn, m.fp.n)
	m.mu.Unlock()
}
