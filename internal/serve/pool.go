// The execution side of the cache: a bounded worker pool with request
// coalescing and per-client admission control.
//
// Classification is the heart. For every requested cell, under ONE lock we
// decide hit (store already has it), coalesce (an identical computation is
// in flight — join it), or miss (create the flight). Because the store
// lookup and the flight-table lookup happen under the same mutex, two
// concurrent identical misses can never both reach a worker: whichever
// classifies first creates the flight, the other finds it. That is the
// exactly-once guarantee the acceptance test pins under -race.
//
// Admission is all-or-nothing per request: a batch (a sweep, a whole
// figure) either reserves queue slots and client quota for every new flight
// it needs, or creates nothing and reports ErrBusy — so a half-admitted
// figure never wedges the queue. Hits and coalesced joins are free: they
// consume no slot and no quota (the originator of a flight pays for it).
//
// This file is the bgplint-sanctioned goroutine launch site for
// internal/serve (the analogue of bench/parallel.go): workers are launched
// here and joined in Close, and tests fan out through runConcurrently below
// instead of raw go statements.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/sim"
)

// ErrBusy is returned when admission would exceed the queue bound or the
// requesting client's quota; the HTTP layer maps it to 429.
var ErrBusy = errors.New("serve: queue full or client quota exceeded")

// flight is one in-progress computation. All requests for its key share it;
// entry/err are written by exactly one worker before done is closed.
type flight struct {
	key    string
	cell   bench.Cell
	client string // originator, whose quota the flight consumes
	done   chan struct{}
	entry  Entry
	err    error
}

// Pool runs cell computations on a fixed set of worker goroutines.
type Pool struct {
	store   *Store
	metrics *Metrics
	runCell func(bench.Cell) (sim.Time, error)

	queueCap  int
	clientCap int
	queue     chan *flight
	wg        sync.WaitGroup

	mu       sync.Mutex
	flights  map[string]*flight
	queued   int            // flights sent to queue, not yet picked up
	byClient map[string]int // outstanding originated flights per client
}

// NewPool starts workers goroutines executing runCell. queueCap bounds
// flights waiting for a worker; clientCap bounds the flights any one client
// may have outstanding. Close joins the workers; Submit must not be called
// after Close.
func NewPool(store *Store, metrics *Metrics, workers, queueCap, clientCap int, runCell func(bench.Cell) (sim.Time, error)) *Pool {
	p := &Pool{
		store:     store,
		metrics:   metrics,
		runCell:   runCell,
		queueCap:  queueCap,
		clientCap: clientCap,
		// The buffer equals the admission bound, so a send under the
		// queued-counter invariant never blocks while holding p.mu.
		queue:    make(chan *flight, queueCap),
		flights:  make(map[string]*flight),
		byClient: make(map[string]int),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Close drains the queue and joins all workers.
func (p *Pool) Close() {
	close(p.queue)
	p.wg.Wait()
}

// Submit resolves every cell — from the store, from an in-flight identical
// computation, or by enqueueing a new flight — and blocks until all are
// answered. It returns the entries in cell order plus the number answered
// from the store at classification time (the HTTP layer's X-Cache signal).
// If admitting the new flights would exceed the queue bound or the client's
// quota, nothing is enqueued and ErrBusy is returned.
func (p *Pool) Submit(client string, cells []bench.Cell) ([]Entry, int, error) {
	out := make([]Entry, len(cells))
	waits := make([]*flight, len(cells))
	hits := 0

	p.mu.Lock()
	// Pass 1: classify without side effects, counting the distinct new
	// flights this batch needs.
	keys := make([]string, len(cells))
	newKeys := make(map[string]bool)
	for i, c := range cells {
		keys[i] = KeyCell(c)
		if _, ok := p.store.Get(keys[i]); ok {
			continue
		}
		if _, ok := p.flights[keys[i]]; ok {
			continue
		}
		newKeys[keys[i]] = true
	}
	if p.queued+len(newKeys) > p.queueCap || p.byClient[client]+len(newKeys) > p.clientCap {
		p.mu.Unlock()
		p.metrics.Rejected.Add(1)
		return nil, 0, ErrBusy
	}
	// Pass 2: commit. Duplicates within the batch coalesce onto the flight
	// the first occurrence creates, exactly like cross-request duplicates.
	for i, c := range cells {
		if e, ok := p.store.Get(keys[i]); ok {
			out[i] = e
			hits++
			p.metrics.Hits.Add(1)
			continue
		}
		if f, ok := p.flights[keys[i]]; ok {
			waits[i] = f
			p.metrics.Coalesced.Add(1)
			continue
		}
		f := &flight{key: keys[i], cell: c, client: client, done: make(chan struct{})}
		p.flights[keys[i]] = f
		p.queued++
		p.byClient[client]++
		p.metrics.Misses.Add(1)
		p.metrics.QueueDepth.Add(1)
		p.queue <- f
		waits[i] = f
	}
	p.mu.Unlock()

	for i, f := range waits {
		if f == nil {
			continue
		}
		<-f.done
		if f.err != nil {
			return nil, 0, fmt.Errorf("cell %s @ %d: %w", cells[i].Algo, cells[i].Arg, f.err)
		}
		out[i] = f.entry
	}
	return out, hits, nil
}

// worker executes flights until the queue closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for f := range p.queue {
		p.mu.Lock()
		p.queued--
		p.mu.Unlock()
		p.metrics.QueueDepth.Add(-1)
		p.metrics.InFlight.Add(1)

		start := time.Now()
		t, err := p.safeRun(f.cell)
		ms := float64(time.Since(start).Microseconds()) / 1e3
		p.metrics.InFlight.Add(-1)

		if err == nil {
			f.entry = Entry{
				Key:        f.key,
				Canon:      CanonicalCell(f.cell),
				Experiment: f.cell.Experiment,
				Series:     f.cell.Series,
				PS:         int64(t),
				ComputeMS:  ms,
			}
			p.store.Put(f.entry)
			p.metrics.ObserveCompute(f.cell.Experiment, ms)
		} else {
			f.err = err
		}

		// Failed flights are removed, not cached: a later identical request
		// retries rather than replaying the error forever.
		p.mu.Lock()
		delete(p.flights, f.key)
		if p.byClient[f.client]--; p.byClient[f.client] == 0 {
			delete(p.byClient, f.client)
		}
		p.mu.Unlock()
		close(f.done)
	}
}

// safeRun converts a panicking cell run into an error so one bad request
// cannot take a worker (and with it the whole pool) down.
func (p *Pool) safeRun(c bench.Cell) (t sim.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: cell panicked: %v", r)
		}
	}()
	return p.runCell(c)
}

// runConcurrently fans fn over n goroutines and joins them all before
// returning — the package's one sanctioned fan-out for tests, so test files
// need no raw go statements of their own.
func runConcurrently(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
