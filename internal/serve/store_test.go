package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func testEntry(t *testing.T, arg int) Entry {
	t.Helper()
	c := testCell()
	c.Arg = arg
	return Entry{
		Key: KeyCell(c), Canon: CanonicalCell(c),
		Experiment: c.Experiment, Series: c.Series,
		PS: int64(arg) * 1000, ComputeMS: 1.5,
	}
}

func TestStorePutGetFirstWriteWins(t *testing.T) {
	s := NewStore()
	e := testEntry(t, 1024)
	s.Put(e)
	dup := e
	dup.PS, dup.ComputeMS = e.PS, 99 // same answer, different wall-clock
	s.Put(dup)
	got, ok := s.Get(e.Key)
	if !ok || got.ComputeMS != 1.5 {
		t.Fatalf("Get = %+v, %v; want the first write", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreSaveLoadRoundtrip(t *testing.T) {
	s := NewStore()
	for _, arg := range []int{1, 64 << 10, 2 << 20} {
		s.Put(testEntry(t, arg))
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	n, err := fresh.Load(path)
	if err != nil || n != 3 {
		t.Fatalf("Load = %d, %v; want 3", n, err)
	}
	for _, e := range s.Snapshot() {
		got, ok := fresh.Get(e.Key)
		if !ok || got != e {
			t.Fatalf("entry %s did not round-trip: %+v vs %+v", e.Key, got, e)
		}
	}
	snap := fresh.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Key < snap[j].Key }) {
		t.Fatal("Snapshot not sorted by key")
	}
}

// TestStoreLoadRejectsTamperedEntries pins the degrade-to-miss property: an
// entry whose key does not re-derive from its canonical form is skipped, so
// a corrupted cache file can cost time but never correctness.
func TestStoreLoadRejectsTamperedEntries(t *testing.T) {
	s := NewStore()
	good := testEntry(t, 1024)
	bad := testEntry(t, 2048)
	bad.Canon += "tampered=1\n" // key no longer matches content
	path := filepath.Join(t.TempDir(), "cache.json")
	data, _ := json.Marshal(cacheFile{Schema: cacheSchema, Entries: []Entry{good, bad}})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := s.Load(path)
	if err != nil || n != 1 {
		t.Fatalf("Load = %d, %v; want 1 accepted", n, err)
	}
	if _, ok := s.Get(bad.Key); ok {
		t.Fatal("tampered entry accepted")
	}
}

func TestStoreLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	data, _ := json.Marshal(cacheFile{Schema: "something/else"})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore().Load(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
