package data

import (
	"testing"
	"testing/quick"
)

func TestRealRoundTrip(t *testing.T) {
	b := Real([]byte{1, 2, 3})
	if !b.IsReal() || b.Len() != 3 {
		t.Fatal("Real buffer misreported")
	}
	if b.Bytes()[1] != 2 {
		t.Fatal("Bytes lost data")
	}
}

func TestPhantom(t *testing.T) {
	b := Phantom(10)
	if b.IsReal() {
		t.Fatal("phantom reported real")
	}
	if b.Len() != 10 {
		t.Fatal("phantom length wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bytes on phantom did not panic")
		}
	}()
	b.Bytes()
}

func TestZeroValueIsEmptyReal(t *testing.T) {
	var b Buf
	if !b.IsReal() || b.Len() != 0 {
		t.Fatal("zero Buf not an empty real buffer")
	}
}

func TestNew(t *testing.T) {
	if !New(5, true).IsReal() {
		t.Error("functional New not real")
	}
	if New(5, false).IsReal() {
		t.Error("phantom New real")
	}
}

func TestSlice(t *testing.T) {
	b := Real([]byte{0, 1, 2, 3, 4})
	s := b.Slice(1, 3)
	if s.Len() != 3 || s.Bytes()[0] != 1 {
		t.Fatal("slice wrong")
	}
	// Slices alias the parent.
	s.Bytes()[0] = 9
	if b.Bytes()[1] != 9 {
		t.Fatal("slice does not alias")
	}
	p := Phantom(5).Slice(2, 2)
	if p.IsReal() || p.Len() != 2 {
		t.Fatal("phantom slice wrong")
	}
}

func TestSliceBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slice did not panic")
		}
	}()
	Real(make([]byte, 4)).Slice(2, 3)
}

func TestCopyRealAndPhantom(t *testing.T) {
	src := Real([]byte{5, 6, 7})
	dst := Real(make([]byte, 3))
	Copy(dst, src)
	if !Equal(dst, src) {
		t.Fatal("copy lost data")
	}
	// Phantom participation must not panic.
	Copy(Phantom(3), src)
	Copy(dst, Phantom(3))
}

func TestCopyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Copy(Real(make([]byte, 2)), Real(make([]byte, 3)))
}

func TestFloatsRoundTrip(t *testing.T) {
	vals := []float64{1.5, -2.25, 1e300}
	b := Real(make([]byte, len(vals)*Float64Len))
	b.PutFloats(vals)
	got := b.Floats()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Floats[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestAddFloats(t *testing.T) {
	a := Real(make([]byte, 16))
	b := Real(make([]byte, 16))
	a.PutFloats([]float64{1, 2})
	b.PutFloats([]float64{10, 20})
	AddFloats(a, b)
	got := a.Floats()
	if got[0] != 11 || got[1] != 22 {
		t.Fatalf("AddFloats = %v", got)
	}
}

func TestAddFloatsPhantomNoop(t *testing.T) {
	a := Real(make([]byte, 16))
	a.PutFloats([]float64{1, 2})
	AddFloats(a, Phantom(16))
	if got := a.Floats(); got[0] != 1 {
		t.Fatalf("phantom add mutated dst: %v", got)
	}
}

func TestFillDeterministic(t *testing.T) {
	a := Real(make([]byte, 64))
	b := Real(make([]byte, 64))
	a.Fill(42)
	b.Fill(42)
	if !Equal(a, b) {
		t.Fatal("Fill not deterministic")
	}
	b.Fill(43)
	if Equal(a, b) {
		t.Fatal("different seeds produced identical fill")
	}
}

func TestEqualSemantics(t *testing.T) {
	if Equal(Real([]byte{1}), Real([]byte{1, 2})) {
		t.Error("length mismatch compared equal")
	}
	if !Equal(Phantom(4), Real(make([]byte, 4))) {
		t.Error("phantom vs real of same length must compare equal")
	}
}

func TestCopyPropertyPreservesData(t *testing.T) {
	f := func(src []byte) bool {
		s := Real(src)
		d := Real(make([]byte, len(src)))
		Copy(d, s)
		return Equal(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddFloatsCommutative(t *testing.T) {
	f := func(x, y []int16) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		a1 := Real(make([]byte, n*Float64Len))
		b1 := Real(make([]byte, n*Float64Len))
		a2 := Real(make([]byte, n*Float64Len))
		b2 := Real(make([]byte, n*Float64Len))
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i], ys[i] = float64(x[i]), float64(y[i])
		}
		a1.PutFloats(xs)
		b1.PutFloats(ys)
		a2.PutFloats(ys)
		b2.PutFloats(xs)
		AddFloats(a1, b1)
		AddFloats(a2, b2)
		return Equal(a1, a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufIdentity(t *testing.T) {
	a := New(16, true)
	b := New(16, true)
	if a.ID() == b.ID() {
		t.Fatal("distinct buffers share an ID")
	}
	if a.Slice(4, 8).ID() != a.ID() {
		t.Fatal("slice does not inherit parent ID")
	}
	if Phantom(8).ID() == Phantom(8).ID() {
		t.Fatal("phantoms share an ID")
	}
}
