// Package data provides the message-buffer abstraction shared by all
// collective algorithms. A Buf either owns real bytes (functional runs:
// tests, examples) or is a phantom of a given length (large timing-only
// benchmark runs, where allocating thousands of multi-megabyte rank buffers
// would be prohibitive). Copy and reduction helpers move real data when both
// operands are real and degrade to no-ops otherwise, so algorithm code is
// identical in both modes and the virtual-time cost model is unaffected.
package data

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// bufIDs assigns each allocated buffer a distinct identity, used as the key
// of CNK process-window mapping caches.
var bufIDs atomic.Uint64

// Buf is a byte buffer view. The zero value is an empty real buffer.
type Buf struct {
	b  []byte // nil for phantom buffers (when n > 0)
	n  int
	id uint64
}

// Real wraps an existing byte slice.
func Real(b []byte) Buf { return Buf{b: b, n: len(b), id: bufIDs.Add(1)} }

// Phantom returns a length-only buffer carrying no data.
func Phantom(n int) Buf {
	if n < 0 {
		panic("data: negative phantom length")
	}
	return Buf{n: n, id: bufIDs.Add(1)}
}

// ID identifies the buffer allocation; slices share their parent's identity.
// Process-window mapping caches key on it.
func (b Buf) ID() uint64 { return b.id }

// New returns a buffer of n bytes: real when functional is true, phantom
// otherwise.
func New(n int, functional bool) Buf {
	if functional {
		return Real(make([]byte, n))
	}
	return Phantom(n)
}

// Len returns the buffer length in bytes.
func (b Buf) Len() int { return b.n }

// IsReal reports whether the buffer carries actual data.
func (b Buf) IsReal() bool { return b.b != nil || b.n == 0 }

// Bytes returns the underlying slice of a real buffer and panics for a
// phantom: callers must check IsReal when a run may be timing-only.
func (b Buf) Bytes() []byte {
	if !b.IsReal() {
		panic("data: Bytes on phantom buffer")
	}
	return b.b
}

// Slice returns the sub-buffer [off, off+n).
func (b Buf) Slice(off, n int) Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("data: slice [%d:%d) of %d-byte buffer", off, off+n, b.n))
	}
	if b.IsReal() {
		return Buf{b: b.b[off : off+n], n: n, id: b.id}
	}
	return Buf{n: n, id: b.id}
}

// Copy copies src into dst. Lengths must match; data moves only when both
// buffers are real.
func Copy(dst, src Buf) {
	if dst.n != src.n {
		panic(fmt.Sprintf("data: copy length mismatch %d != %d", dst.n, src.n))
	}
	if dst.IsReal() && src.IsReal() {
		copy(dst.b, src.b)
	}
}

// Float64Len is the byte size of one float64 element.
const Float64Len = 8

// Floats interprets a real buffer as little-endian float64 values.
func (b Buf) Floats() []float64 {
	raw := b.Bytes()
	if len(raw)%Float64Len != 0 {
		panic("data: buffer length not a multiple of 8")
	}
	out := make([]float64, len(raw)/Float64Len)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*Float64Len:]))
	}
	return out
}

// PutFloats encodes vals into the real buffer as little-endian float64.
func (b Buf) PutFloats(vals []float64) {
	raw := b.Bytes()
	if len(raw) != len(vals)*Float64Len {
		panic("data: PutFloats length mismatch")
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[i*Float64Len:], math.Float64bits(v))
	}
}

// AddFloats accumulates src's float64 view into dst element-wise
// (dst += src). Lengths must match; a no-op unless both are real.
func AddFloats(dst, src Buf) {
	if dst.n != src.n {
		panic(fmt.Sprintf("data: add length mismatch %d != %d", dst.n, src.n))
	}
	if !dst.IsReal() || !src.IsReal() {
		return
	}
	if dst.n%Float64Len != 0 {
		panic("data: AddFloats on non-multiple-of-8 buffer")
	}
	for off := 0; off < dst.n; off += Float64Len {
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst.b[off:]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src.b[off:]))
		binary.LittleEndian.PutUint64(dst.b[off:], math.Float64bits(d+s))
	}
}

// Fill writes a deterministic byte pattern derived from seed into a real
// buffer; a no-op for phantoms. Used by tests and examples to verify
// collective delivery.
func (b Buf) Fill(seed uint64) {
	if !b.IsReal() {
		return
	}
	x := seed*2862933555777941757 + 3037000493
	for i := range b.b {
		x = x*2862933555777941757 + 3037000493
		b.b[i] = byte(x >> 56)
	}
}

// Equal reports whether two real buffers hold identical bytes. Phantom
// buffers compare equal by length alone.
func Equal(a, b Buf) bool {
	if a.n != b.n {
		return false
	}
	if !a.IsReal() || !b.IsReal() {
		return true
	}
	for i := range a.b {
		if a.b[i] != b.b[i] {
			return false
		}
	}
	return true
}
