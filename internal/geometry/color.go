package geometry

import "fmt"

// Color identifies one of the edge-disjoint spanning-tree routes used by the
// multi-color rectangle collective algorithms (paper §V-A, Fig. 2). A color
// is a dimension order (the sequence of line-broadcast phases) and a travel
// direction. On a 3D torus the six colors
//
//	(XYZ,+) (YZX,+) (ZXY,+) (XYZ,-) (YZX,-) (ZXY,-)
//
// have pairwise-distinct first-hop links at the root (the six torus links),
// giving six edge-disjoint routes and an aggregate injection bandwidth of six
// links. On a mesh only the three positive-direction colors exist.
type Color struct {
	Order [3]Dim
	Dir   Dir
}

func (c Color) String() string {
	return fmt.Sprintf("%v%v%v%v", c.Order[0], c.Order[1], c.Order[2], c.Dir)
}

// FirstHop returns the (dimension, direction) of the color's first link out
// of the root, which must be unique per color for edge-disjointness.
func (c Color) FirstHop() (Dim, Dir) { return c.Order[0], c.Dir }

var dimOrders = [3][3]Dim{
	{X, Y, Z},
	{Y, Z, X},
	{Z, X, Y},
}

// TorusColors returns the six edge-disjoint colors available on a 3D torus.
func TorusColors() []Color {
	out := make([]Color, 0, 6)
	for _, dir := range []Dir{Plus, Minus} {
		for _, ord := range dimOrders {
			out = append(out, Color{Order: ord, Dir: dir})
		}
	}
	return out
}

// MeshColors returns the three edge-disjoint colors available on a 3D mesh
// (no wrap links, so only the positive direction can reach every node from
// the corner-rooted rectangle schedule).
func MeshColors() []Color {
	out := make([]Color, 0, 3)
	for _, ord := range dimOrders {
		out = append(out, Color{Order: ord, Dir: Plus})
	}
	return out
}

// Colors returns the usable color set for n requested routes (1..6),
// truncating the torus color list. The collective framework uses this to
// sweep color counts in ablation benchmarks.
func Colors(n int) []Color {
	all := TorusColors()
	if n < 1 || n > len(all) {
		panic(fmt.Sprintf("geometry: color count %d outside 1..%d", n, len(all)))
	}
	return all[:n]
}

// directedDistance returns the hop count from a to b along dimension d
// travelling only in direction dir (with wrap-around).
func (t Torus) directedDistance(a, b Coord, d Dim, dir Dir) int {
	n := t.Size(d)
	if dir == Plus {
		return ((b.Get(d)-a.Get(d))%n + n) % n
	}
	return ((a.Get(d)-b.Get(d))%n + n) % n
}

// ColorHops returns the number of link traversals from root to dst along
// color c's route: the packet walks each dimension in the color's order,
// always in the color's direction.
func (t Torus) ColorHops(c Color, root, dst Coord) int {
	total := 0
	for _, d := range c.Order {
		total += t.directedDistance(root, dst, d, c.Dir)
	}
	return total
}

// ColorDepth returns the maximum ColorHops over all nodes: the pipeline depth
// of the color's spanning tree. For a torus this is (DX-1)+(DY-1)+(DZ-1)
// regardless of root or color.
func (t Torus) ColorDepth(c Color, root Coord) int {
	max := 0
	for id := 0; id < t.Nodes(); id++ {
		if h := t.ColorHops(c, root, t.CoordOf(id)); h > max {
			max = h
		}
	}
	return max
}

// SplitColors partitions n bytes across k colors as evenly as possible, the
// first (n mod k) colors receiving one extra byte. The returned offsets and
// lengths tile [0, n) exactly; colors beyond the data receive zero-length
// partitions.
func SplitColors(n, k int) (offsets, lengths []int) {
	return SplitAligned(n, k, 1)
}

// SplitAligned partitions n bytes across k parts with every boundary a
// multiple of align (the final part absorbs the remainder). Reductions over
// doubles use align 8 so chunk arithmetic never splits an element.
func SplitAligned(n, k, align int) (offsets, lengths []int) {
	if k < 1 || align < 1 {
		panic("geometry: SplitAligned with k < 1 or align < 1")
	}
	offsets = make([]int, k)
	lengths = make([]int, k)
	base, extra := n/k, n%k
	off := 0
	for i := 0; i < k-1; i++ {
		l := base
		if i < extra {
			l++
		}
		l -= l % align
		offsets[i] = off
		lengths[i] = l
		off += l
	}
	offsets[k-1] = off
	lengths[k-1] = n - off
	return offsets, lengths
}
