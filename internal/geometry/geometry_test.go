package geometry

import (
	"testing"
	"testing/quick"
)

func mustTorus(t *testing.T, dx, dy, dz int) Torus {
	t.Helper()
	tor, err := NewTorus(dx, dy, dz)
	if err != nil {
		t.Fatal(err)
	}
	return tor
}

func TestNewTorusRejectsBadDims(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if _, err := NewTorus(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("NewTorus(%v) accepted", dims)
		}
	}
}

func TestNodeIDBijection(t *testing.T) {
	tor := mustTorus(t, 4, 3, 5)
	seen := make(map[int]bool)
	for x := 0; x < 4; x++ {
		for y := 0; y < 3; y++ {
			for z := 0; z < 5; z++ {
				c := Coord{x, y, z}
				id := tor.NodeID(c)
				if id < 0 || id >= tor.Nodes() {
					t.Fatalf("NodeID(%v) = %d out of range", c, id)
				}
				if seen[id] {
					t.Fatalf("NodeID(%v) = %d duplicated", c, id)
				}
				seen[id] = true
				if back := tor.CoordOf(id); back != c {
					t.Fatalf("CoordOf(NodeID(%v)) = %v", c, back)
				}
			}
		}
	}
}

func TestNodeIDBijectionProperty(t *testing.T) {
	tor := mustTorus(t, 8, 8, 16)
	f := func(id uint16) bool {
		n := int(id) % tor.Nodes()
		return tor.NodeID(tor.CoordOf(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborWrap(t *testing.T) {
	tor := mustTorus(t, 4, 4, 4)
	c := Coord{3, 0, 2}
	if got := tor.Neighbor(c, X, Plus); got != (Coord{0, 0, 2}) {
		t.Errorf("X+ wrap: %v", got)
	}
	if got := tor.Neighbor(c, Y, Minus); got != (Coord{3, 3, 2}) {
		t.Errorf("Y- wrap: %v", got)
	}
}

func TestNeighborRoundTrip(t *testing.T) {
	tor := mustTorus(t, 4, 6, 2)
	f := func(id uint16, dim uint8, plus bool) bool {
		c := tor.CoordOf(int(id) % tor.Nodes())
		d := Dim(dim % 3)
		dir := Plus
		if !plus {
			dir = Minus
		}
		back := tor.Neighbor(tor.Neighbor(c, d, dir), d, -dir)
		return back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineCoversDimension(t *testing.T) {
	tor := mustTorus(t, 8, 4, 4)
	c := Coord{2, 1, 3}
	line := tor.Line(c, X, Plus)
	if len(line) != 7 {
		t.Fatalf("line length = %d", len(line))
	}
	seen := map[int]bool{c.X: true}
	for _, n := range line {
		if n.Y != c.Y || n.Z != c.Z {
			t.Fatalf("line node %v left the X line", n)
		}
		if seen[n.X] {
			t.Fatalf("line revisits x=%d", n.X)
		}
		seen[n.X] = true
	}
	if len(seen) != 8 {
		t.Fatalf("line covered %d of 8 positions", len(seen))
	}
}

func TestHopDistance(t *testing.T) {
	tor := mustTorus(t, 8, 8, 8)
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0, 0}, Coord{0, 0, 0}, 0},
		{Coord{0, 0, 0}, Coord{1, 0, 0}, 1},
		{Coord{0, 0, 0}, Coord{7, 0, 0}, 1}, // wrap
		{Coord{0, 0, 0}, Coord{4, 4, 4}, 12},
		{Coord{1, 2, 3}, Coord{5, 6, 7}, 12},
	}
	for _, c := range cases {
		if got := tor.HopDistance(c.a, c.b); got != c.want {
			t.Errorf("HopDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	tor := mustTorus(t, 6, 4, 8)
	f := func(a, b uint16) bool {
		ca := tor.CoordOf(int(a) % tor.Nodes())
		cb := tor.CoordOf(int(b) % tor.Nodes())
		return tor.HopDistance(ca, cb) == tor.HopDistance(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteReachesDestination(t *testing.T) {
	tor := mustTorus(t, 4, 6, 8)
	f := func(a, b uint16) bool {
		src := tor.CoordOf(int(a) % tor.Nodes())
		dst := tor.CoordOf(int(b) % tor.Nodes())
		cur := src
		hops := tor.Route(src, dst)
		for _, h := range hops {
			if h.From != cur {
				return false
			}
			cur = tor.Neighbor(cur, h.Dim, h.Dir)
		}
		return cur == dst && len(hops) == tor.HopDistance(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusColorsDistinctFirstHops(t *testing.T) {
	colors := TorusColors()
	if len(colors) != 6 {
		t.Fatalf("len = %d", len(colors))
	}
	seen := make(map[[2]int]bool)
	for _, c := range colors {
		d, dir := c.FirstHop()
		key := [2]int{int(d), int(dir)}
		if seen[key] {
			t.Fatalf("colors share first hop %v%v", d, dir)
		}
		seen[key] = true
	}
	if len(seen) != 6 {
		t.Fatalf("first hops cover %d of 6 root links", len(seen))
	}
}

func TestMeshColors(t *testing.T) {
	colors := MeshColors()
	if len(colors) != 3 {
		t.Fatalf("len = %d", len(colors))
	}
	for _, c := range colors {
		if c.Dir != Plus {
			t.Errorf("mesh color %v not positive", c)
		}
	}
}

func TestColorsTruncation(t *testing.T) {
	if got := len(Colors(4)); got != 4 {
		t.Fatalf("Colors(4) len = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Colors(7) did not panic")
		}
	}()
	Colors(7)
}

func TestColorHops(t *testing.T) {
	tor := mustTorus(t, 8, 8, 8)
	root := Coord{0, 0, 0}
	c := Color{Order: [3]Dim{X, Y, Z}, Dir: Plus}
	if got := tor.ColorHops(c, root, Coord{3, 2, 1}); got != 6 {
		t.Errorf("hops = %d, want 6", got)
	}
	// Negative direction wraps the other way: reaching (1,0,0) going minus
	// takes 7 hops.
	cm := Color{Order: [3]Dim{X, Y, Z}, Dir: Minus}
	if got := tor.ColorHops(cm, root, Coord{1, 0, 0}); got != 7 {
		t.Errorf("minus hops = %d, want 7", got)
	}
}

func TestColorDepth(t *testing.T) {
	tor := mustTorus(t, 4, 4, 8)
	root := Coord{1, 2, 3}
	want := 3 + 3 + 7
	for _, c := range TorusColors() {
		if got := tor.ColorDepth(c, root); got != want {
			t.Errorf("depth(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestColorRouteVisitsAllNodesOnce(t *testing.T) {
	// Along a color every node has a well-defined hop distance; distances
	// group nodes into a breadth ordering that covers the torus.
	tor := mustTorus(t, 4, 4, 4)
	root := Coord{0, 0, 0}
	for _, c := range TorusColors() {
		counts := make(map[int]int)
		for id := 0; id < tor.Nodes(); id++ {
			counts[tor.ColorHops(c, root, tor.CoordOf(id))]++
		}
		if counts[0] != 1 {
			t.Errorf("color %v: %d nodes at distance 0", c, counts[0])
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != tor.Nodes() {
			t.Errorf("color %v covers %d nodes", c, total)
		}
	}
}

func TestSplitColors(t *testing.T) {
	offs, lens := SplitColors(10, 3)
	wantLens := []int{4, 3, 3}
	off := 0
	for i := range lens {
		if lens[i] != wantLens[i] || offs[i] != off {
			t.Fatalf("SplitColors(10,3) = %v %v", offs, lens)
		}
		off += lens[i]
	}
}

func TestSplitColorsProperty(t *testing.T) {
	f := func(n uint16, k uint8) bool {
		kk := int(k)%6 + 1
		offs, lens := SplitColors(int(n), kk)
		off := 0
		for i := range lens {
			if offs[i] != off || lens[i] < 0 {
				return false
			}
			off += lens[i]
		}
		return off == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitColorsZeroLength(t *testing.T) {
	_, lens := SplitColors(2, 6)
	nonzero := 0
	for _, l := range lens {
		if l > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("SplitColors(2,6) lengths = %v", lens)
	}
}

func TestDimDirStrings(t *testing.T) {
	if X.String() != "X" || Y.String() != "Y" || Z.String() != "Z" {
		t.Error("Dim strings wrong")
	}
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Error("Dir strings wrong")
	}
	c := Color{Order: [3]Dim{Y, Z, X}, Dir: Minus}
	if c.String() != "YZX-" {
		t.Errorf("color string = %q", c.String())
	}
}

func TestCoordWithGet(t *testing.T) {
	c := Coord{1, 2, 3}
	for d := X; d < NumDims; d++ {
		if c.With(d, 7).Get(d) != 7 {
			t.Errorf("With/Get %v", d)
		}
	}
}
