// Package geometry describes the 3D-torus node layout of a Blue Gene/P
// partition: coordinates, rank mappings, lines along dimensions, neighbor
// relations, and the edge-disjoint "colors" used by the multi-color
// spanning-tree collective algorithms.
package geometry

import "fmt"

// Dim identifies a torus dimension.
type Dim int

// Torus dimensions.
const (
	X Dim = iota
	Y
	Z
	NumDims
)

func (d Dim) String() string {
	switch d {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Dir is a direction along a dimension: +1 or -1.
type Dir int

// Directions.
const (
	Plus  Dir = 1
	Minus Dir = -1
)

func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Coord is a node coordinate in the torus.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Get returns the coordinate along dimension d.
func (c Coord) Get(d Dim) int {
	switch d {
	case X:
		return c.X
	case Y:
		return c.Y
	case Z:
		return c.Z
	}
	panic("geometry: bad dimension")
}

// With returns a copy of c with dimension d set to v.
func (c Coord) With(d Dim, v int) Coord {
	switch d {
	case X:
		c.X = v
	case Y:
		c.Y = v
	case Z:
		c.Z = v
	default:
		panic("geometry: bad dimension")
	}
	return c
}

// Torus is a 3D torus of DX x DY x DZ nodes.
type Torus struct{ DX, DY, DZ int }

// NewTorus validates the dimensions and returns the torus.
func NewTorus(dx, dy, dz int) (Torus, error) {
	if dx < 1 || dy < 1 || dz < 1 {
		return Torus{}, fmt.Errorf("geometry: invalid torus %dx%dx%d", dx, dy, dz)
	}
	return Torus{DX: dx, DY: dy, DZ: dz}, nil
}

func (t Torus) String() string { return fmt.Sprintf("%dx%dx%d", t.DX, t.DY, t.DZ) }

// Nodes returns the total node count.
func (t Torus) Nodes() int { return t.DX * t.DY * t.DZ }

// Size returns the extent of dimension d.
func (t Torus) Size(d Dim) int {
	switch d {
	case X:
		return t.DX
	case Y:
		return t.DY
	case Z:
		return t.DZ
	}
	panic("geometry: bad dimension")
}

// Contains reports whether c is a valid coordinate in t.
func (t Torus) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.DX && c.Y >= 0 && c.Y < t.DY && c.Z >= 0 && c.Z < t.DZ
}

// NodeID maps a coordinate to a dense node identifier in [0, Nodes()).
// X varies fastest, matching BG/P's default XYZ mapping.
func (t Torus) NodeID(c Coord) int {
	if !t.Contains(c) {
		panic(fmt.Sprintf("geometry: coordinate %v outside %v", c, t))
	}
	return c.X + t.DX*(c.Y+t.DY*c.Z)
}

// CoordOf is the inverse of NodeID.
func (t Torus) CoordOf(id int) Coord {
	if id < 0 || id >= t.Nodes() {
		panic(fmt.Sprintf("geometry: node id %d outside %v", id, t))
	}
	return Coord{
		X: id % t.DX,
		Y: (id / t.DX) % t.DY,
		Z: id / (t.DX * t.DY),
	}
}

// Neighbor returns the coordinate one hop from c along (d, dir), with
// wrap-around.
func (t Torus) Neighbor(c Coord, d Dim, dir Dir) Coord {
	n := t.Size(d)
	v := (c.Get(d) + int(dir) + n) % n
	return c.With(d, v)
}

// Line returns the coordinates along dimension d through c, starting at c and
// walking in direction dir, excluding c itself. On a torus the line visits
// every other node in the dimension exactly once (Size(d)-1 nodes).
func (t Torus) Line(c Coord, d Dim, dir Dir) []Coord {
	n := t.Size(d)
	out := make([]Coord, 0, n-1)
	cur := c
	for i := 1; i < n; i++ {
		cur = t.Neighbor(cur, d, dir)
		out = append(out, cur)
	}
	return out
}

// HopDistance returns the minimum hop count between a and b using torus
// wrap-around in each dimension.
func (t Torus) HopDistance(a, b Coord) int {
	total := 0
	for d := X; d < NumDims; d++ {
		n := t.Size(d)
		diff := a.Get(d) - b.Get(d)
		if diff < 0 {
			diff = -diff
		}
		if n-diff < diff {
			diff = n - diff
		}
		total += diff
	}
	return total
}

// Route returns the dimension-ordered (XYZ) shortest route from src to dst as
// a hop list. Each hop identifies the node the packet leaves and the
// direction it takes; the packet arrives at the next node in the list (or dst
// after the final hop).
func (t Torus) Route(src, dst Coord) []Hop {
	var hops []Hop
	cur := src
	for d := X; d < NumDims; d++ {
		n := t.Size(d)
		for cur.Get(d) != dst.Get(d) {
			fwd := (dst.Get(d) - cur.Get(d) + n) % n
			dir := Plus
			if fwd > n-fwd {
				dir = Minus
			}
			hops = append(hops, Hop{From: cur, Dim: d, Dir: dir})
			cur = t.Neighbor(cur, d, dir)
		}
	}
	return hops
}

// Hop is a single link traversal: leaving node From along (Dim, Dir).
type Hop struct {
	From Coord
	Dim  Dim
	Dir  Dir
}

func (h Hop) String() string { return fmt.Sprintf("%v%v%v", h.From, h.Dir, h.Dim) }

// XYZ is a convenience constructor for Coord used by cross-package callers.
func XYZ(x, y, z int) Coord { return Coord{X: x, Y: y, Z: z} }
