// Command bgplint runs the repository's determinism and lock-free-discipline
// analyzers (internal/lint) over the given package patterns, in the style of
// a go/analysis multichecker:
//
//	go run ./cmd/bgplint ./...          # the whole module (CI gate)
//	go run ./cmd/bgplint ./internal/shm # one package
//	go run ./cmd/bgplint -only maporder ./...
//
// Exit status: 0 when no findings, 1 when findings were reported, 2 on
// load/type-check failure. Findings are suppressed per line with
// //bgplint:allow <analyzer> annotations (see internal/lint).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bgpcoll/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bgplint [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var sel []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("bgplint: unknown analyzer %q", name)
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("bgplint: %v", err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatalf("bgplint: %v", err)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fatalf("bgplint: %v", err)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatalf("bgplint: %v", err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "bgplint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
