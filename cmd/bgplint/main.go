// Command bgplint runs the repository's determinism, program-contract, and
// hot-path analyzers (internal/lint) over the given package patterns, in the
// style of a go/analysis multichecker:
//
//	go run ./cmd/bgplint ./...            # the whole module (CI gate)
//	go run ./cmd/bgplint ./internal/shm   # one package
//	go run ./cmd/bgplint -only maporder ./...
//	go run ./cmd/bgplint -json -cache ./...
//	go run ./cmd/bgplint -sarif lint.sarif ./...
//	go run ./cmd/bgplint -as bgpcoll/internal/coll ./internal/lint/testdata/progframe_bad
//
// Exit status: 0 when no error-severity findings (advisories alone do not
// fail the gate), 1 when error findings were reported, 2 on load/type-check
// failure. Findings are suppressed per line with
//
//	//bgplint:allow <rule>[,<rule>...] -- <justification>
//
// annotations, which are themselves audited (see internal/lint).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bgpcoll/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	useCache := flag.Bool("cache", false, "cache per-package results keyed by content hash ($BGPLINT_CACHE or the user cache dir)")
	asPath := flag.String("as", "", "analyze a single directory argument under this import path (fixture mode; disables -cache)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bgplint [-only names] [-json] [-sarif file] [-cache] [-as importpath] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			sev := a.Severity
			if sev == "" {
				sev = lint.SevError
			}
			fmt.Printf("%-18s [%s] %s\n", a.Name, sev, a.Doc)
		}
		return
	}
	if *only != "" {
		var sel []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("bgplint: unknown analyzer %q", name)
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("bgplint: %v", err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatalf("bgplint: %v", err)
	}

	var diags []lint.Diagnostic
	if *asPath != "" {
		if len(patterns) != 1 {
			fatalf("bgplint: -as takes exactly one directory argument")
		}
		pkg, err := loader.LoadFixture(patterns[0], *asPath)
		if err != nil {
			fatalf("bgplint: %v", err)
		}
		diags, err = lint.Run(pkg, analyzers)
		if err != nil {
			fatalf("bgplint: %v", err)
		}
	} else {
		diags = runPatterns(loader, analyzers, patterns, *useCache)
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, loader.Root); err != nil {
			fatalf("bgplint: %v", err)
		}
	} else {
		for _, d := range diags {
			if d.Severity == lint.SevAdvisory {
				fmt.Printf("%s [advisory]\n", d)
			} else {
				fmt.Println(d)
			}
		}
	}
	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fatalf("bgplint: %v", err)
		}
		if err := lint.WriteSARIF(f, diags, loader.Root); err != nil {
			fatalf("bgplint: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("bgplint: %v", err)
		}
	}

	errors, advisories := 0, 0
	for _, d := range diags {
		if d.Severity == lint.SevAdvisory {
			advisories++
		} else {
			errors++
		}
	}
	if errors+advisories > 0 {
		fmt.Fprintf(os.Stderr, "bgplint: %d error finding(s), %d advisory\n", errors, advisories)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// runPatterns analyzes every package directory the patterns expand to,
// consulting the content-hash cache when enabled. Cache failures degrade to
// uncached runs; they never fail the lint.
func runPatterns(loader *lint.Loader, analyzers []*lint.Analyzer, patterns []string, useCache bool) []lint.Diagnostic {
	dirs, err := loader.Dirs(patterns)
	if err != nil {
		fatalf("bgplint: %v", err)
	}
	var cache *lint.Cache
	if useCache {
		cache, err = lint.NewCache("", loader)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgplint: cache disabled: %v\n", err)
			cache = nil
		}
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		var key string
		if cache != nil {
			key, err = cache.Key(dir, analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bgplint: cache key for %s: %v\n", dir, err)
				key = ""
			}
			if key != "" {
				if cached, ok := cache.Get(key); ok {
					diags = append(diags, cached...)
					continue
				}
			}
		}
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			fatalf("bgplint: %v", err)
		}
		var dirDiags []lint.Diagnostic
		for _, pkg := range pkgs {
			ds, err := lint.Run(pkg, analyzers)
			if err != nil {
				fatalf("bgplint: %v", err)
			}
			dirDiags = append(dirDiags, ds...)
		}
		if cache != nil && key != "" {
			if err := cache.Put(key, dirDiags); err != nil {
				fmt.Fprintf(os.Stderr, "bgplint: cache write for %s: %v\n", dir, err)
			}
		}
		diags = append(diags, dirDiags...)
	}
	return diags
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
