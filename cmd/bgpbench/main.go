// Command bgpbench regenerates the paper's performance study (§VI) on the
// simulated BG/P machine: Figures 6-10 and Table I, printed as text tables.
//
//	bgpbench                     # every figure and table at default scale
//	bgpbench -exp fig10,table1   # a subset
//	bgpbench -racks 2            # torus experiments at full 2-rack scale
//	bgpbench -quick              # trimmed message sweeps for a fast pass
//	bgpbench -par 1              # serial sweep (default: GOMAXPROCS workers)
//	bgpbench -reference          # goroutine reference mode (same virtual times)
//	bgpbench -benchjson BENCH_SIM.json   # record per-figure wall-clock
//	bgpbench -cpuprofile cpu.pprof       # profile the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
)

// benchReport is the BENCH_SIM.json schema: one record per run so the perf
// trajectory is comparable across PRs. Every field is a resolved value, not a
// flag as typed: workers is the actual pool width after the 0 = GOMAXPROCS
// default, and ranks/iters are per-experiment because their defaults are
// per-experiment (tree partitions default to 2 racks, torus to a midplane).
// The commit and timestamp make a stored report attributable to a tree state.
type benchReport struct {
	GoMaxProcs  int               `json:"gomaxprocs"`
	Workers     int               `json:"workers"`
	Quick       bool              `json:"quick"`
	Reference   bool              `json:"reference,omitempty"`
	GitCommit   string            `json:"git_commit,omitempty"`
	Timestamp   string            `json:"timestamp_utc"`
	Experiments []experimentTimes `json:"experiments"`
	TotalMS     float64           `json:"total_ms"`
}

type experimentTimes struct {
	ID     string  `json:"id"`
	Ranks  int     `json:"ranks"`
	Iters  int     `json:"iters"`
	WallMS float64 `json:"wall_ms"`
}

// gitCommit identifies the working tree for the report, tolerating trees
// without git (an extracted tarball still benchmarks fine).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if dirty, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(dirty) > 0 {
		commit += "-dirty"
	}
	return commit
}

func main() {
	exps := flag.String("exp", "all", "comma-separated experiments: fig6,fig7,fig8,fig9,fig10,table1, ablation.colors, ablation.chunk, ablation.fifo, \"ablations\", or all")
	racks := flag.Int("racks", 0, "racks for partition size (0 = per-experiment default; torus experiments default to a 512-node midplane)")
	iters := flag.Int("iters", 0, "micro-benchmark iterations (0 = per-experiment default)")
	quick := flag.Bool("quick", false, "trim message-size sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	par := flag.Int("par", 0, "sweep worker count: cells fan across this many goroutines (0 = GOMAXPROCS, 1 = serial)")
	reference := flag.Bool("reference", false, "run kernels in noProgram reference mode (rank bodies on pooled goroutines); virtual times are identical, only wall-clock differs")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-clock times to this JSON file (BENCH_SIM.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	coll.Register()
	opts := bench.Options{Racks: *racks, Iters: *iters, Quick: *quick, Workers: *par, Reference: *reference}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	workers := *par
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      *quick,
		Reference:  *reference,
		GitCommit:  gitCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	totalStart := time.Now()
	all := append(bench.Experiments(), bench.Ablations()...)
	for _, exp := range all {
		isAblation := strings.HasPrefix(exp.ID, "ablation.")
		selected := want[exp.ID] ||
			(want["all"] && !isAblation) || // "all" = the paper's artifacts
			(want["ablations"] && isAblation)
		if !selected {
			continue
		}
		// Settle the previous experiment's garbage before the timer starts,
		// so each wall-clock attributes GC debt to the run that created it.
		runtime.GC()
		start := time.Now()
		fig, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		report.Experiments = append(report.Experiments, experimentTimes{
			ID:     exp.ID,
			Ranks:  fig.Ranks,
			Iters:  fig.Iters,
			WallMS: float64(wall.Microseconds()) / 1e3,
		})
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
			fmt.Printf("[%s regenerated in %v]\n\n", exp.ID, wall.Round(time.Millisecond))
		}
	}
	if len(report.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "bgpbench: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
	report.TotalMS = float64(time.Since(totalStart).Microseconds()) / 1e3

	if *benchJSON != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: writing %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
	}
}
