// Command bgpbench regenerates the paper's performance study (§VI) on the
// simulated BG/P machine: Figures 6-10 and Table I, printed as text tables.
//
//	bgpbench                     # every figure and table at default scale
//	bgpbench -exp fig10,table1   # a subset
//	bgpbench -racks 2            # torus experiments at full 2-rack scale
//	bgpbench -quick              # trimmed message sweeps for a fast pass
//	bgpbench -iters-scale 32     # 32x the iteration count (extrapolation keeps it cheap)
//	bgpbench -noextrap           # execute every iteration; no steady-state extrapolation
//	bgpbench -par 1              # serial sweep (default: GOMAXPROCS workers)
//	bgpbench -reference          # goroutine reference mode (same virtual times)
//	bgpbench -shards 4           # sharded kernels: parallel epochs inside each run
//	bgpbench -shards 4 -noshard  # same partition, sequential-epoch vehicle
//	bgpbench -benchjson BENCH_SIM.json   # record per-figure wall-clock
//	bgpbench -cpuprofile cpu.pprof       # profile the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
)

// benchReport is the BENCH_SIM.json schema: one record per run so the perf
// trajectory is comparable across PRs. Every field is a resolved value, not a
// flag as typed: workers is the actual pool width after the 0 = GOMAXPROCS
// default, and ranks/iters are per-experiment because their defaults are
// per-experiment (tree partitions default to 2 racks, torus to a midplane).
// The commit and timestamp make a stored report attributable to a tree state.
type benchReport struct {
	GoMaxProcs int  `json:"gomaxprocs"`
	Workers    int  `json:"workers"`
	Quick      bool `json:"quick"`
	Reference  bool `json:"reference,omitempty"`
	// Shards and NoShard identify the kernel execution vehicle: how many
	// shards each collective-network partition was split into (0 = classic
	// single-shard kernels) and whether sharded epochs ran sequentially.
	// Virtual times are identical across vehicles, wall-clocks are not, so
	// benchdiff refuses to read a cross-vehicle comparison as a code change.
	Shards  int  `json:"shards,omitempty"`
	NoShard bool `json:"noshard,omitempty"`
	// GOGC and GOMemLimit are the effective GC tuning for the run — whatever
	// -gogc/-gomemlimit or the environment resolved to — so a stored report's
	// wall-clocks and memstats are attributable to a GC configuration.
	// GOMemLimit is math.MaxInt64 when no limit is set (Go's "off" value).
	GOGC       int   `json:"gogc"`
	GOMemLimit int64 `json:"gomemlimit"`
	// ItersScale multiplies every experiment's iteration count (1 = the
	// per-experiment defaults as published); NoExtrap disables steady-state
	// iteration extrapolation so every iteration executes. Both change what
	// a wall-clock means, so benchdiff warns on cross-setting comparisons.
	ItersScale int  `json:"iters_scale,omitempty"`
	NoExtrap   bool `json:"noextrap,omitempty"`
	// PGO is the profile the binary was built with ("" for a non-PGO
	// build), so benchdiff can refuse to read a PGO-vs-plain comparison as
	// a code change.
	PGO         string            `json:"pgo,omitempty"`
	GitCommit   string            `json:"git_commit,omitempty"`
	Timestamp   string            `json:"timestamp_utc"`
	Experiments []experimentTimes `json:"experiments"`
	TotalMS     float64           `json:"total_ms"`
}

// experimentTimes carries one experiment's wall-clock and its runtime
// memstats deltas, measured from after the pre-experiment runtime.GC() to
// the end of the run: bytes and objects allocated, completed GC cycles, and
// the process heap footprint (HeapSys: the peak heap the OS has had to back
// so far — monotone per process, so per-experiment values in one run share a
// high-water mark).
type experimentTimes struct {
	ID    string `json:"id"`
	Ranks int    `json:"ranks"`
	Iters int    `json:"iters"`
	// ItersScale echoes the run's -iters-scale so a stored row's Iters is
	// attributable (Iters already includes the multiplier); ExtrapIters is
	// how many of those iterations were extrapolated instead of executed.
	ItersScale   int     `json:"iters_scale,omitempty"`
	ExtrapIters  int64   `json:"extrapolated_iters,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Allocs       uint64  `json:"allocs"`
	GCCycles     uint32  `json:"gc_cycles"`
	HeapSysBytes uint64  `json:"heap_sys_bytes"`
	// PeakHeapInuseBytes is the highest HeapInuse the sampler observed while
	// the experiment ran. Unlike HeapSys it falls back down with live data,
	// so it attributes footprint to the experiment that caused it — the
	// number a capacity regression moves first.
	PeakHeapInuseBytes uint64 `json:"peak_heap_inuse_bytes"`
}

// pgoProfile reports the PGO profile path the binary was built with, from
// the embedded build info ("" when built without -pgo or when the binary
// carries no build info, e.g. under `go test`).
func pgoProfile() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "-pgo" {
			return s.Value
		}
	}
	return ""
}

// gitCommit identifies the working tree for the report, tolerating trees
// without git (an extracted tarball still benchmarks fine).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if dirty, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(dirty) > 0 {
		commit += "-dirty"
	}
	return commit
}

func main() {
	exps := flag.String("exp", "all", "comma-separated experiments: fig6,fig7,fig8,fig9,fig10,table1,figs (rack-scale capacity), ablation.colors, ablation.chunk, ablation.fifo, \"ablations\", or all")
	racks := flag.Int("racks", 0, "racks for partition size (0 = per-experiment default; torus experiments default to a 512-node midplane)")
	iters := flag.Int("iters", 0, "micro-benchmark iterations (0 = per-experiment default)")
	itersScale := flag.Int("iters-scale", 1, "multiply every experiment's iteration count by this factor; steady-state extrapolation keeps the cost near 1x, and the multiplier is stamped into -benchjson")
	noExtrap := flag.Bool("noextrap", false, "disable steady-state iteration extrapolation: execute every measure-loop iteration (virtual times are identical, only wall-clock differs)")
	quick := flag.Bool("quick", false, "trim message-size sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	par := flag.Int("par", 0, "sweep worker count: cells fan across this many goroutines (0 = GOMAXPROCS, 1 = serial)")
	reference := flag.Bool("reference", false, "run kernels in noProgram reference mode (rank bodies on pooled goroutines); virtual times are identical, only wall-clock differs")
	shards := flag.Int("shards", 0, "split each collective-network partition into this many kernel shards with parallel epochs (0 = single-shard; torus experiments always run single-shard)")
	noShard := flag.Bool("noshard", false, "run sharded kernels in the sequential-epoch reference vehicle (only meaningful with -shards > 1); virtual times are identical, only wall-clock differs")
	gogc := flag.Int("gogc", 0, "set the GC target percentage for the run (0 = leave GOGC as inherited); the effective value is stamped into -benchjson")
	gomemlimit := flag.Int64("gomemlimit", 0, "set the soft memory limit in bytes for the run (0 = leave GOMEMLIMIT as inherited); the effective value is stamped into -benchjson")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-clock times to this JSON file (BENCH_SIM.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	coll.Register()
	opts := bench.Options{Racks: *racks, Iters: *iters, ItersScale: *itersScale, Quick: *quick, Workers: *par, Reference: *reference, Shards: *shards, NoShard: *noShard, NoExtrap: *noExtrap}

	// Apply GC tuning first, then read back the effective values: the
	// setters return the previous setting, so a set-and-restore probe reports
	// the environment's value when no flag overrides it.
	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}
	if *gomemlimit > 0 {
		debug.SetMemoryLimit(*gomemlimit)
	}
	effGOGC := debug.SetGCPercent(100)
	debug.SetGCPercent(effGOGC)
	effMemLimit := debug.SetMemoryLimit(-1)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	workers := *par
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      *quick,
		Reference:  *reference,
		Shards:     *shards,
		NoShard:    *noShard,
		ItersScale: *itersScale,
		NoExtrap:   *noExtrap,
		GOGC:       effGOGC,
		GOMemLimit: effMemLimit,
		PGO:        pgoProfile(),
		GitCommit:  gitCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	totalStart := time.Now()
	all := append(bench.Experiments(), bench.Ablations()...)
	for _, exp := range all {
		isAblation := strings.HasPrefix(exp.ID, "ablation.")
		selected := want[exp.ID] ||
			(want["all"] && !isAblation) || // "all" = the paper's artifacts
			(want["ablations"] && isAblation)
		if !selected {
			continue
		}
		// Settle the previous experiment's garbage — and drop its pooled
		// worlds — before the timer starts, so each wall-clock and memstats
		// delta attributes GC debt and construction cost to the run that
		// created it.
		bench.DrainWorldPool()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		// bench.StartHeapSampler joins its goroutine inside Peak, so no
		// sampler outlives the experiment it is attributed to (the leak
		// check lives in bench/heapsampler_test.go).
		sampler := bench.StartHeapSampler()
		extrapBefore := bench.ExtrapolatedIters()
		start := time.Now()
		fig, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		peakHeap := sampler.Peak()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		report.Experiments = append(report.Experiments, experimentTimes{
			ID:                 exp.ID,
			Ranks:              fig.Ranks,
			Iters:              fig.Iters,
			ItersScale:         *itersScale,
			ExtrapIters:        bench.ExtrapolatedIters() - extrapBefore,
			WallMS:             float64(wall.Microseconds()) / 1e3,
			AllocBytes:         after.TotalAlloc - before.TotalAlloc,
			Allocs:             after.Mallocs - before.Mallocs,
			GCCycles:           after.NumGC - before.NumGC,
			HeapSysBytes:       after.HeapSys,
			PeakHeapInuseBytes: peakHeap,
		})
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
			fmt.Printf("[%s regenerated in %v]\n\n", exp.ID, wall.Round(time.Millisecond))
		}
	}
	if len(report.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "bgpbench: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
	report.TotalMS = float64(time.Since(totalStart).Microseconds()) / 1e3

	if *benchJSON != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: writing %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %v\n", err)
			os.Exit(1)
		}
	}
}
