// Command bgpbench regenerates the paper's performance study (§VI) on the
// simulated BG/P machine: Figures 6-10 and Table I, printed as text tables.
//
//	bgpbench                     # every figure and table at default scale
//	bgpbench -exp fig10,table1   # a subset
//	bgpbench -racks 2            # torus experiments at full 2-rack scale
//	bgpbench -quick              # trimmed message sweeps for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiments: fig6,fig7,fig8,fig9,fig10,table1, ablation.colors, ablation.chunk, ablation.fifo, \"ablations\", or all")
	racks := flag.Int("racks", 0, "racks for partition size (0 = per-experiment default; torus experiments default to a 512-node midplane)")
	iters := flag.Int("iters", 0, "micro-benchmark iterations (0 = per-experiment default)")
	quick := flag.Bool("quick", false, "trim message-size sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	coll.Register()
	opts := bench.Options{Racks: *racks, Iters: *iters, Quick: *quick}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	ranAny := false
	all := append(bench.Experiments(), bench.Ablations()...)
	for _, exp := range all {
		isAblation := strings.HasPrefix(exp.ID, "ablation.")
		selected := want[exp.ID] ||
			(want["all"] && !isAblation) || // "all" = the paper's artifacts
			(want["ablations"] && isAblation)
		if !selected {
			continue
		}
		ranAny = true
		start := time.Now()
		fig, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgpbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
			fmt.Printf("[%s regenerated in %v]\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "bgpbench: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
}
