// Command benchdiff compares two bgpbench reports (BENCH_SIM.json) and fails
// when the candidate regresses on wall-clock. CI runs it with the committed
// baseline as the reference, so a PR that slows the simulator down beyond the
// threshold fails the build instead of silently eroding the perf budget.
//
//	benchdiff baseline.json candidate.json             # gate at the default 10%
//	benchdiff -threshold 0.05 baseline.json new.json   # tighter gate
//
// Output is one row per experiment with the wall-clock ratio and signed
// percent delta, plus a whole-run total_ms comparison; the exit status is 1
// when any experiment present in the baseline regressed beyond -threshold
// (or is missing from the candidate), or when total_ms itself did, 2 on
// usage or decode errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

// report mirrors the subset of the bgpbench -benchjson schema benchdiff
// needs; unknown fields are ignored so older reports still load.
type report struct {
	GoMaxProcs  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Quick       bool    `json:"quick"`
	GitCommit   string  `json:"git_commit"`
	Timestamp   string  `json:"timestamp_utc"`
	TotalMS     float64 `json:"total_ms"`
	Experiments []struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
	} `json:"experiments"`
}

func (r *report) describe() string {
	s := fmt.Sprintf("gomaxprocs=%d workers=%d", r.GoMaxProcs, r.Workers)
	if r.Quick {
		s += " quick"
	}
	if r.GitCommit != "" {
		s += " commit=" + r.GitCommit
	}
	if r.Timestamp != "" {
		s += " at=" + r.Timestamp
	}
	return s
}

func load(path string) (*report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diffRow is one experiment's comparison. Ratio is candidate/baseline
// wall-clock (>1 means slower) and Pct the same delta as a signed percentage
// (+ means slower); Missing marks a baseline experiment the candidate did not
// run, which the gate treats as a regression.
type diffRow struct {
	ID        string
	BaseMS    float64
	CandMS    float64
	Ratio     float64
	Pct       float64
	Missing   bool
	Regressed bool
}

// diff matches experiments by ID in baseline order and applies the gate:
// an experiment regresses when its wall-clock grew by more than threshold
// (a fraction, e.g. 0.10). Experiments only in the candidate are appended
// informationally and never gate.
func diff(base, cand *report, threshold float64) (rows []diffRow, regressed bool) {
	candMS := make(map[string]float64, len(cand.Experiments))
	for _, e := range cand.Experiments {
		candMS[e.ID] = e.WallMS
	}
	seen := make(map[string]bool, len(base.Experiments))
	for _, e := range base.Experiments {
		seen[e.ID] = true
		row := diffRow{ID: e.ID, BaseMS: e.WallMS}
		if ms, ok := candMS[e.ID]; ok {
			row.CandMS = ms
			if e.WallMS > 0 {
				row.Ratio = ms / e.WallMS
				row.Pct = (row.Ratio - 1) * 100
			}
			row.Regressed = row.Ratio > 1+threshold
		} else {
			row.Missing = true
			row.Regressed = true
		}
		regressed = regressed || row.Regressed
		rows = append(rows, row)
	}
	for _, e := range cand.Experiments {
		if !seen[e.ID] {
			rows = append(rows, diffRow{ID: e.ID, CandMS: e.WallMS})
		}
	}
	return rows, regressed
}

// totalDelta compares the reports' whole-run wall-clock. ok is false when
// either report predates the total_ms field (zero), in which case the total
// never gates. Otherwise pct is the signed percent delta (+ means slower) and
// regressed applies the same threshold the per-experiment gate uses.
func totalDelta(base, cand *report, threshold float64) (pct float64, regressed, ok bool) {
	if base.TotalMS <= 0 || cand.TotalMS <= 0 {
		return 0, false, false
	}
	ratio := cand.TotalMS / base.TotalMS
	return (ratio - 1) * 100, ratio > 1+threshold, true
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression gate: fail when an experiment's wall-clock grows by more than this fraction")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold frac] baseline.json candidate.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err == nil {
		var cand *report
		cand, err = load(flag.Arg(1))
		if err == nil {
			os.Exit(run(os.Stdout, base, cand, *threshold))
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// run prints the comparison and returns the process exit code.
func run(w *os.File, base, cand *report, threshold float64) int {
	fmt.Fprintf(w, "baseline:  %s\ncandidate: %s\n\n", base.describe(), cand.describe())
	rows, regressed := diff(base, cand, threshold)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tbaseline ms\tcandidate ms\tratio\tdelta\t")
	for _, r := range rows {
		switch {
		case r.Missing:
			fmt.Fprintf(tw, "%s\t%.1f\t-\t-\t-\tMISSING\n", r.ID, r.BaseMS)
		case r.BaseMS == 0:
			fmt.Fprintf(tw, "%s\t-\t%.1f\t-\t-\tnew\n", r.ID, r.CandMS)
		default:
			verdict := "ok"
			if r.Regressed {
				verdict = fmt.Sprintf("REGRESSED (> +%.0f%%)", threshold*100)
			} else if r.Ratio < 1 {
				verdict = fmt.Sprintf("%.2fx faster", 1/r.Ratio)
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.3f\t%+.1f%%\t%s\n", r.ID, r.BaseMS, r.CandMS, r.Ratio, r.Pct, verdict)
		}
	}
	tw.Flush()
	if pct, totalRegressed, ok := totalDelta(base, cand, threshold); ok {
		fmt.Fprintf(w, "\ntotal: %.1f ms -> %.1f ms (%.3fx, %+.1f%%)\n",
			base.TotalMS, cand.TotalMS, cand.TotalMS/base.TotalMS, pct)
		regressed = regressed || totalRegressed
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: wall-clock regression beyond %.0f%% threshold\n", threshold*100)
		return 1
	}
	return 0
}
