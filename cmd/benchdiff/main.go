// Command benchdiff compares two bgpbench reports (BENCH_SIM.json) and fails
// when the candidate regresses on wall-clock. CI runs it with the committed
// baseline as the reference, so a PR that slows the simulator down beyond the
// threshold fails the build instead of silently eroding the perf budget.
//
//	benchdiff baseline.json candidate.json             # gate at the default 10%
//	benchdiff -threshold 0.05 baseline.json new.json   # tighter gate
//	benchdiff -allocs 0.10 baseline.json new.json      # also gate alloc_bytes
//	benchdiff -strict baseline.json new.json           # missing experiment fails
//	benchdiff BENCH_SIM.quick.json bgpsimd-cache.json  # server cache as candidate
//
// Either argument may also be a bgpsimd persisted cache file
// (-cache-file; schema bgpsimd-cache/v1): cached entries carry the
// wall-clock cost of their original cold miss, which benchdiff groups by
// experiment and sums into wall_ms rows comparable to a workers=1 bgpbench
// report. CI uses this to gate the server's cold-miss cost against the
// committed baselines.
//
// Output is one row per experiment with the wall-clock ratio, signed percent
// delta, and (when either report carries memstats) the allocated-bytes delta,
// plus a whole-run total_ms comparison. An experiment present in only one
// report is listed as a warning; -strict turns a baseline experiment missing
// from the candidate back into a hard regression. The exit status is 1 when
// any experiment regressed beyond -threshold (or -allocs, when enabled, or a
// -strict missing experiment), or when total_ms itself did, 2 on usage or
// decode errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// reportExperiment is one experiment's record in a report. AllocBytes/Allocs
// are zero in reports from before bgpbench recorded memstats; the alloc gate
// skips such rows rather than comparing against nothing.
type reportExperiment struct {
	ID string `json:"id"`
	// Iters/ItersScale identify how many measure-loop iterations the row's
	// wall-clock covers (zero in reports from before bgpbench stamped them;
	// a zero scale means the pre-scale default of 1). Rows measured at
	// different iteration counts are not wall-clock comparable, so diff
	// warns per experiment on a mismatch.
	Iters      int     `json:"iters"`
	ItersScale int     `json:"iters_scale"`
	WallMS     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Allocs     uint64  `json:"allocs"`
	// PeakHeap is the sampled peak HeapInuse during the experiment (zero in
	// reports from before bgpbench sampled it). Growth beyond
	// peakHeapWarnFrac warns — a capacity regression candidate — but never
	// gates: the sampler is best-effort and allocator-noise sensitive, so a
	// hard gate would flake.
	PeakHeap uint64 `json:"peak_heap_inuse_bytes"`
}

// peakHeapWarnFrac is the peak-heap growth fraction beyond which benchdiff
// warns.
const peakHeapWarnFrac = 0.10

// report mirrors the subset of the bgpbench -benchjson schema benchdiff
// needs; unknown fields are ignored so older reports still load.
type report struct {
	GoMaxProcs int  `json:"gomaxprocs"`
	Workers    int  `json:"workers"`
	Quick      bool `json:"quick"`
	// GOGC/GOMemLimit/PGO are the run's effective GC tuning and build
	// profile (zero values in reports from before bgpbench stamped them).
	// Mismatches between baseline and candidate make wall-clock deltas
	// attributable to the runtime configuration rather than the code, so
	// benchdiff warns about them (envWarnings).
	GOGC       int    `json:"gogc"`
	GOMemLimit int64  `json:"gomemlimit"`
	PGO        string `json:"pgo"`
	// Shards/NoShard are the kernel execution vehicle (zero values in
	// reports from before bgpbench stamped them, which is also the classic
	// single-shard vehicle). A vehicle mismatch shifts wall-clock without a
	// code change, so benchdiff warns about it like the GC fields above.
	Shards  int  `json:"shards"`
	NoShard bool `json:"noshard"`
	// ItersScale/NoExtrap are the run's iteration multiplier and whether
	// steady-state extrapolation was disabled (zero values in older reports;
	// a zero ItersScale means the pre-scale default of 1). Either changes
	// what a wall-clock measures, so mismatches warn like the fields above.
	ItersScale  int                `json:"iters_scale"`
	NoExtrap    bool               `json:"noextrap"`
	GitCommit   string             `json:"git_commit"`
	Timestamp   string             `json:"timestamp_utc"`
	TotalMS     float64            `json:"total_ms"`
	Experiments []reportExperiment `json:"experiments"`
}

func (r *report) describe() string {
	s := fmt.Sprintf("gomaxprocs=%d workers=%d", r.GoMaxProcs, r.Workers)
	if r.Quick {
		s += " quick"
	}
	if r.GOGC != 0 {
		s += fmt.Sprintf(" gogc=%d", r.GOGC)
	}
	if r.GOMemLimit != 0 {
		s += " gomemlimit=" + memLimitStr(r.GOMemLimit)
	}
	if r.PGO != "" {
		s += " pgo=" + r.PGO
	}
	if r.Shards > 1 {
		s += fmt.Sprintf(" shards=%d", r.Shards)
		if r.NoShard {
			s += " noshard"
		}
	}
	if r.ItersScale > 1 {
		s += fmt.Sprintf(" iters-scale=%d", r.ItersScale)
	}
	if r.NoExtrap {
		s += " noextrap"
	}
	if r.GitCommit != "" {
		s += " commit=" + r.GitCommit
	}
	if r.Timestamp != "" {
		s += " at=" + r.Timestamp
	}
	return s
}

// cacheSchema is the schema marker of a bgpsimd persisted cache file
// (internal/serve's -cache-file format); load probes for it so a server
// cache is accepted directly as a report source.
const cacheSchema = "bgpsimd-cache/v1"

// cacheToReport converts a bgpsimd cache file into the report shape: cached
// entries record the wall-clock cost of their original cold miss, so
// grouping by experiment and summing compute_ms yields per-experiment
// wall-clock figures comparable to a workers=1 bgpbench run of the same
// experiments. Entries are unordered in principle, so experiments are
// emitted sorted by ID for deterministic output.
func cacheToReport(blob []byte) (*report, bool) {
	var f struct {
		Schema  string `json:"schema"`
		Entries []struct {
			Experiment string  `json:"experiment"`
			ComputeMS  float64 `json:"compute_ms"`
		} `json:"entries"`
	}
	if json.Unmarshal(blob, &f) != nil || f.Schema != cacheSchema {
		return nil, false
	}
	byExp := make(map[string]float64)
	for _, e := range f.Entries {
		byExp[e.Experiment] += e.ComputeMS
	}
	ids := make([]string, 0, len(byExp))
	for id := range byExp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	r := &report{Workers: 1} // per-cell costs sum as if computed serially
	for _, id := range ids {
		r.Experiments = append(r.Experiments, reportExperiment{ID: id, WallMS: byExp[id]})
		r.TotalMS += byExp[id]
	}
	return r, true
}

func load(path string) (*report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if r, ok := cacheToReport(blob); ok {
		return r, nil
	}
	var r report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// gate bundles the comparison policy: the wall-clock threshold (a fraction,
// e.g. 0.10), the opt-in allocated-bytes threshold (<= 0 disables the alloc
// gate), and whether a baseline experiment missing from the candidate is a
// hard failure (strict) or a warning.
type gate struct {
	Threshold float64
	Allocs    float64
	Strict    bool
}

// diffRow is one experiment's comparison. Ratio is candidate/baseline
// wall-clock (>1 means slower) and Pct the same delta as a signed percentage
// (+ means slower); the Alloc fields mirror them for allocated bytes when
// both reports carry memstats. Missing marks a baseline experiment the
// candidate did not run.
type diffRow struct {
	ID        string
	BaseMS    float64
	CandMS    float64
	Ratio     float64
	Pct       float64
	BaseAlloc uint64
	CandAlloc uint64
	AllocPct  float64
	HasAlloc  bool
	Missing   bool
	Regressed bool
	AllocBad  bool
}

// diff matches experiments by ID in baseline order and applies the gate.
// Experiments present in only one report become warnings: a baseline
// experiment the candidate lacks regresses only under g.Strict, and
// candidate-only experiments are appended informationally and never gate.
func diff(base, cand *report, g gate) (rows []diffRow, warnings []string, regressed bool) {
	candExp := make(map[string]reportExperiment, len(cand.Experiments))
	for _, e := range cand.Experiments {
		candExp[e.ID] = e
	}
	seen := make(map[string]bool, len(base.Experiments))
	for _, e := range base.Experiments {
		seen[e.ID] = true
		row := diffRow{ID: e.ID, BaseMS: e.WallMS, BaseAlloc: e.AllocBytes}
		if c, ok := candExp[e.ID]; ok {
			row.CandMS = c.WallMS
			row.CandAlloc = c.AllocBytes
			if e.WallMS > 0 {
				row.Ratio = c.WallMS / e.WallMS
				row.Pct = (row.Ratio - 1) * 100
			}
			row.Regressed = row.Ratio > 1+g.Threshold
			if e.AllocBytes > 0 && c.AllocBytes > 0 {
				row.HasAlloc = true
				row.AllocPct = (float64(c.AllocBytes)/float64(e.AllocBytes) - 1) * 100
				if g.Allocs > 0 {
					row.AllocBad = float64(c.AllocBytes) > float64(e.AllocBytes)*(1+g.Allocs)
				}
			}
			if e.Iters > 0 && c.Iters > 0 && e.Iters != c.Iters {
				warnings = append(warnings, fmt.Sprintf(
					"%s: iteration count differs: baseline measured %d iters, candidate %d; wall-clocks cover different amounts of work",
					e.ID, e.Iters, c.Iters))
			}
			if itersScaleOf(e.ItersScale) != itersScaleOf(c.ItersScale) {
				warnings = append(warnings, fmt.Sprintf(
					"%s: iters-scale differs: baseline ran at %dx, candidate at %dx; wall-clocks cover different amounts of work",
					e.ID, itersScaleOf(e.ItersScale), itersScaleOf(c.ItersScale)))
			}
			if e.PeakHeap > 0 && c.PeakHeap > 0 &&
				float64(c.PeakHeap) > float64(e.PeakHeap)*(1+peakHeapWarnFrac) {
				warnings = append(warnings, fmt.Sprintf(
					"%s: peak heap grew %s -> %s (%+.1f%%, > +%.0f%%); capacity regression candidate",
					e.ID, mb(e.PeakHeap), mb(c.PeakHeap),
					(float64(c.PeakHeap)/float64(e.PeakHeap)-1)*100, peakHeapWarnFrac*100))
			}
		} else {
			row.Missing = true
			if g.Strict {
				row.Regressed = true
			} else {
				warnings = append(warnings, fmt.Sprintf("%s: in baseline only (candidate did not run it)", e.ID))
			}
		}
		regressed = regressed || row.Regressed || row.AllocBad
		rows = append(rows, row)
	}
	for _, e := range cand.Experiments {
		if !seen[e.ID] {
			rows = append(rows, diffRow{ID: e.ID, CandMS: e.WallMS, CandAlloc: e.AllocBytes})
			warnings = append(warnings, fmt.Sprintf("%s: in candidate only (no baseline to compare)", e.ID))
		}
	}
	return rows, warnings, regressed
}

// itersScaleOf normalizes a stored iters_scale: reports from before the
// field (and runs that left the flag at its default) mean a 1x multiplier.
func itersScaleOf(v int) int {
	if v <= 0 {
		return 1
	}
	return v
}

// memLimitStr renders a GOMEMLIMIT value ("off" for Go's no-limit marker).
func memLimitStr(v int64) string {
	if v == math.MaxInt64 {
		return "off"
	}
	return fmt.Sprintf("%d", v)
}

// envWarnings reports runtime-configuration mismatches between the two
// reports: different effective GOGC, different GOMEMLIMIT, or one side
// built with PGO and the other not (or with a different profile). Any of
// these shifts wall-clock and memstats for reasons that have nothing to do
// with the code under comparison, so the diff is flagged as apples-to-
// oranges — a warning, not a gate, because re-baselining after an
// intentional tuning change is legitimate. A zero GOGC/GOMEMLIMIT means the
// report predates the field and cannot be judged.
func envWarnings(base, cand *report) []string {
	var warns []string
	if base.GOGC != 0 && cand.GOGC != 0 && base.GOGC != cand.GOGC {
		warns = append(warns, fmt.Sprintf(
			"gogc differs: baseline ran with gogc=%d, candidate with gogc=%d; wall-clock and alloc deltas reflect GC tuning, not code",
			base.GOGC, cand.GOGC))
	}
	if base.GOMemLimit != 0 && cand.GOMemLimit != 0 && base.GOMemLimit != cand.GOMemLimit {
		warns = append(warns, fmt.Sprintf(
			"gomemlimit differs: baseline ran with gomemlimit=%s, candidate with gomemlimit=%s; wall-clock and alloc deltas reflect GC tuning, not code",
			memLimitStr(base.GOMemLimit), memLimitStr(cand.GOMemLimit)))
	}
	if base.PGO != cand.PGO {
		describe := func(p string) string {
			if p == "" {
				return "without PGO"
			}
			return "with PGO profile " + p
		}
		warns = append(warns, fmt.Sprintf(
			"PGO differs: baseline built %s, candidate %s; compare same-profile builds",
			describe(base.PGO), describe(cand.PGO)))
	}
	if base.Shards != cand.Shards {
		warns = append(warns, fmt.Sprintf(
			"shard count differs: baseline ran with shards=%d, candidate with shards=%d; wall-clock deltas reflect the kernel vehicle, not code",
			base.Shards, cand.Shards))
	} else if base.NoShard != cand.NoShard {
		warns = append(warns, fmt.Sprintf(
			"epoch vehicle differs: baseline noshard=%t, candidate noshard=%t; wall-clock deltas reflect the kernel vehicle, not code",
			base.NoShard, cand.NoShard))
	}
	if itersScaleOf(base.ItersScale) != itersScaleOf(cand.ItersScale) {
		warns = append(warns, fmt.Sprintf(
			"iters-scale differs: baseline ran at %dx iterations, candidate at %dx; wall-clocks cover different amounts of work",
			itersScaleOf(base.ItersScale), itersScaleOf(cand.ItersScale)))
	}
	if base.NoExtrap != cand.NoExtrap {
		warns = append(warns, fmt.Sprintf(
			"extrapolation differs: baseline noextrap=%t, candidate noextrap=%t; wall-clock deltas reflect the measure-loop vehicle, not code",
			base.NoExtrap, cand.NoExtrap))
	}
	return warns
}

// totalDelta compares the reports' whole-run wall-clock. ok is false when
// either report predates the total_ms field (zero), in which case the total
// never gates. Otherwise pct is the signed percent delta (+ means slower) and
// regressed applies the same threshold the per-experiment gate uses.
func totalDelta(base, cand *report, threshold float64) (pct float64, regressed, ok bool) {
	if base.TotalMS <= 0 || cand.TotalMS <= 0 {
		return 0, false, false
	}
	ratio := cand.TotalMS / base.TotalMS
	return (ratio - 1) * 100, ratio > 1+threshold, true
}

// mb renders an allocated-byte count for the table.
func mb(n uint64) string { return fmt.Sprintf("%.1fMB", float64(n)/(1<<20)) }

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression gate: fail when an experiment's wall-clock grows by more than this fraction")
	allocs := flag.Float64("allocs", 0, "opt-in alloc gate: fail when an experiment's alloc_bytes grows by more than this fraction (0 disables)")
	strict := flag.Bool("strict", false, "treat a baseline experiment missing from the candidate as a regression instead of a warning")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold frac] [-allocs frac] [-strict] baseline.json candidate.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err == nil {
		var cand *report
		cand, err = load(flag.Arg(1))
		if err == nil {
			os.Exit(run(os.Stdout, base, cand, gate{Threshold: *threshold, Allocs: *allocs, Strict: *strict}))
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// run prints the comparison and returns the process exit code.
func run(w *os.File, base, cand *report, g gate) int {
	fmt.Fprintf(w, "baseline:  %s\ncandidate: %s\n\n", base.describe(), cand.describe())
	rows, warnings, regressed := diff(base, cand, g)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tbaseline ms\tcandidate ms\tratio\tdelta\tallocs\t")
	for _, r := range rows {
		alloc := "-"
		if r.HasAlloc {
			alloc = fmt.Sprintf("%s -> %s (%+.1f%%)", mb(r.BaseAlloc), mb(r.CandAlloc), r.AllocPct)
		}
		switch {
		case r.Missing:
			verdict := "WARNING: missing"
			if r.Regressed {
				verdict = "MISSING"
			}
			fmt.Fprintf(tw, "%s\t%.1f\t-\t-\t-\t-\t%s\n", r.ID, r.BaseMS, verdict)
		case r.BaseMS == 0:
			fmt.Fprintf(tw, "%s\t-\t%.1f\t-\t-\t-\tnew\n", r.ID, r.CandMS)
		default:
			verdict := "ok"
			switch {
			case r.Regressed:
				verdict = fmt.Sprintf("REGRESSED (> +%.0f%%)", g.Threshold*100)
			case r.AllocBad:
				verdict = fmt.Sprintf("ALLOC REGRESSED (> +%.0f%%)", g.Allocs*100)
			case r.Ratio < 1:
				verdict = fmt.Sprintf("%.2fx faster", 1/r.Ratio)
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.3f\t%+.1f%%\t%s\t%s\n", r.ID, r.BaseMS, r.CandMS, r.Ratio, r.Pct, alloc, verdict)
		}
	}
	tw.Flush()
	for _, warn := range append(envWarnings(base, cand), warnings...) {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	if pct, totalRegressed, ok := totalDelta(base, cand, g.Threshold); ok {
		fmt.Fprintf(w, "\ntotal: %.1f ms -> %.1f ms (%.3fx, %+.1f%%)\n",
			base.TotalMS, cand.TotalMS, cand.TotalMS/base.TotalMS, pct)
		regressed = regressed || totalRegressed
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: regression beyond threshold\n")
		return 1
	}
	return 0
}
