package main

import (
	"os"
	"path/filepath"
	"testing"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/serve"
)

// TestCacheFileAsReport pins the cross-package contract: a cache file
// written by serve.Store.Save loads as a benchdiff report, with per-
// experiment wall_ms summed from the entries' cold-miss compute costs.
// Building the file through the real Store (not a JSON literal) means a
// schema change on either side fails here instead of silently in CI.
func TestCacheFileAsReport(t *testing.T) {
	s := serve.NewStore()
	for i, e := range []struct {
		exp string
		ms  float64
	}{
		{"fig6", 10}, {"fig6", 30}, {"fig7", 5}, {"adhoc", 2},
	} {
		c := bench.Cell{
			Experiment: e.exp, Series: "s", Cfg: hw.DefaultConfig(),
			Kind: bench.CellBcast, Algo: mpi.BcastTorusShaddr,
			Arg: 1024 * (i + 1), Iters: 1, // distinct payloads, distinct keys
		}
		s.Put(serve.Entry{
			Key: serve.KeyCell(c), Canon: serve.CanonicalCell(c),
			Experiment: e.exp, Series: "s",
			PS: 1000, ComputeMS: e.ms,
		})
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"adhoc": 2, "fig6": 40, "fig7": 5}
	if len(r.Experiments) != len(want) {
		t.Fatalf("experiments: %+v", r.Experiments)
	}
	for _, e := range r.Experiments {
		if want[e.ID] != e.WallMS {
			t.Errorf("%s: wall_ms %.1f, want %.1f", e.ID, e.WallMS, want[e.ID])
		}
	}
	if r.TotalMS != 47 {
		t.Errorf("total_ms = %.1f, want 47", r.TotalMS)
	}

	// A cache candidate diffs against a bgpbench baseline: faster cold
	// misses pass the gate, slower ones fail it.
	base := mkReport("fig6", 50.0, "fig7", 10.0)
	if _, _, regressed := diff(base, r, gate{Threshold: 0.10}); regressed {
		t.Error("faster cache candidate regressed")
	}
	slow := mkReport("fig6", 20.0, "fig7", 1.0)
	if _, _, regressed := diff(slow, r, gate{Threshold: 0.10}); !regressed {
		t.Error("slower cache candidate passed the gate")
	}
}

// TestLoadStillReadsBenchReports pins that the cache probe does not break
// ordinary bgpbench report loading.
func TestLoadStillReadsBenchReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `{"workers":2,"total_ms":100,"experiments":[{"id":"fig6","wall_ms":100}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 2 || len(r.Experiments) != 1 || r.Experiments[0].WallMS != 100 {
		t.Fatalf("report: %+v", r)
	}
}
