package main

import (
	"math"
	"testing"
)

func mkReport(pairs ...any) *report {
	r := &report{}
	for i := 0; i < len(pairs); i += 2 {
		r.Experiments = append(r.Experiments, struct {
			ID     string  `json:"id"`
			WallMS float64 `json:"wall_ms"`
		}{ID: pairs[i].(string), WallMS: pairs[i+1].(float64)})
	}
	return r
}

func TestDiffGate(t *testing.T) {
	base := mkReport("fig7", 1000.0, "fig8", 1000.0)
	cases := []struct {
		name      string
		cand      *report
		threshold float64
		regressed bool
	}{
		{"identical", mkReport("fig7", 1000.0, "fig8", 1000.0), 0.10, false},
		{"faster", mkReport("fig7", 500.0, "fig8", 900.0), 0.10, false},
		{"within threshold", mkReport("fig7", 1090.0, "fig8", 1000.0), 0.10, false},
		{"beyond threshold", mkReport("fig7", 1111.0, "fig8", 1000.0), 0.10, true},
		{"tight threshold", mkReport("fig7", 1060.0, "fig8", 1000.0), 0.05, true},
		{"missing experiment", mkReport("fig7", 1000.0), 0.10, true},
		{"extra experiment never gates", mkReport("fig7", 1000.0, "fig8", 1000.0, "fig9", 9999.0), 0.10, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, regressed := diff(base, tc.cand, tc.threshold)
			if regressed != tc.regressed {
				t.Fatalf("regressed = %v, want %v (rows %+v)", regressed, tc.regressed, rows)
			}
			if len(rows) < len(base.Experiments) {
				t.Fatalf("lost baseline rows: %+v", rows)
			}
		})
	}
}

func TestDiffPercentDelta(t *testing.T) {
	base := mkReport("fig7", 2000.0, "fig8", 800.0)
	cand := mkReport("fig7", 1000.0, "fig8", 1000.0)
	rows, _ := diff(base, cand, 0.50)
	if rows[0].Pct != -50.0 {
		t.Fatalf("fig7 pct = %v, want -50", rows[0].Pct)
	}
	if rows[1].Pct != 25.0 {
		t.Fatalf("fig8 pct = %v, want +25", rows[1].Pct)
	}
}

func TestTotalDelta(t *testing.T) {
	mk := func(total float64) *report { return &report{TotalMS: total} }
	cases := []struct {
		name       string
		base, cand *report
		threshold  float64
		pct        float64
		regressed  bool
		ok         bool
	}{
		{"faster", mk(2000), mk(1000), 0.10, -50, false, true},
		{"within threshold", mk(1000), mk(1050), 0.10, 5, false, true},
		{"beyond threshold", mk(1000), mk(1200), 0.10, 20, true, true},
		{"baseline predates total_ms", mk(0), mk(1000), 0.10, 0, false, false},
		{"candidate missing total_ms", mk(1000), mk(0), 0.10, 0, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pct, regressed, ok := totalDelta(tc.base, tc.cand, tc.threshold)
			if math.Abs(pct-tc.pct) > 1e-9 || regressed != tc.regressed || ok != tc.ok {
				t.Fatalf("totalDelta = (%v, %v, %v), want (%v, %v, %v)",
					pct, regressed, ok, tc.pct, tc.regressed, tc.ok)
			}
		})
	}
}

func TestDiffRowShape(t *testing.T) {
	base := mkReport("fig7", 2000.0, "gone", 100.0)
	cand := mkReport("fig7", 1000.0, "new", 50.0)
	rows, regressed := diff(base, cand, 0.10)
	if !regressed {
		t.Fatal("missing baseline experiment must regress the gate")
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].Ratio != 0.5 || rows[0].Regressed {
		t.Fatalf("fig7 row wrong: %+v", rows[0])
	}
	if !rows[1].Missing || !rows[1].Regressed {
		t.Fatalf("gone row wrong: %+v", rows[1])
	}
	if rows[2].ID != "new" || rows[2].Regressed || rows[2].BaseMS != 0 {
		t.Fatalf("new row wrong: %+v", rows[2])
	}
}
