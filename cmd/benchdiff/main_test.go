package main

import (
	"math"
	"strings"
	"testing"
)

func mkReport(pairs ...any) *report {
	r := &report{}
	for i := 0; i < len(pairs); i += 2 {
		r.Experiments = append(r.Experiments, reportExperiment{
			ID: pairs[i].(string), WallMS: pairs[i+1].(float64),
		})
	}
	return r
}

// withAllocs sets alloc_bytes on the report's experiments in order.
func withAllocs(r *report, bytes ...uint64) *report {
	for i, b := range bytes {
		r.Experiments[i].AllocBytes = b
	}
	return r
}

func TestDiffGate(t *testing.T) {
	base := mkReport("fig7", 1000.0, "fig8", 1000.0)
	cases := []struct {
		name      string
		cand      *report
		g         gate
		regressed bool
	}{
		{"identical", mkReport("fig7", 1000.0, "fig8", 1000.0), gate{Threshold: 0.10}, false},
		{"faster", mkReport("fig7", 500.0, "fig8", 900.0), gate{Threshold: 0.10}, false},
		{"within threshold", mkReport("fig7", 1090.0, "fig8", 1000.0), gate{Threshold: 0.10}, false},
		{"beyond threshold", mkReport("fig7", 1111.0, "fig8", 1000.0), gate{Threshold: 0.10}, true},
		{"tight threshold", mkReport("fig7", 1060.0, "fig8", 1000.0), gate{Threshold: 0.05}, true},
		{"missing experiment warns", mkReport("fig7", 1000.0), gate{Threshold: 0.10}, false},
		{"missing experiment gates under strict", mkReport("fig7", 1000.0), gate{Threshold: 0.10, Strict: true}, true},
		{"extra experiment never gates", mkReport("fig7", 1000.0, "fig8", 1000.0, "fig9", 9999.0), gate{Threshold: 0.10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, _, regressed := diff(base, tc.cand, tc.g)
			if regressed != tc.regressed {
				t.Fatalf("regressed = %v, want %v (rows %+v)", regressed, tc.regressed, rows)
			}
			if len(rows) < len(base.Experiments) {
				t.Fatalf("lost baseline rows: %+v", rows)
			}
		})
	}
}

func TestDiffWarnings(t *testing.T) {
	base := mkReport("fig7", 1000.0, "gone", 100.0)
	cand := mkReport("fig7", 1000.0, "new", 50.0)

	rows, warnings, regressed := diff(base, cand, gate{Threshold: 0.10})
	if regressed {
		t.Fatalf("one-sided experiments must not gate by default: %+v", rows)
	}
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings, want 2: %v", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "gone") || !strings.Contains(warnings[0], "baseline only") {
		t.Fatalf("baseline-only warning wrong: %q", warnings[0])
	}
	if !strings.Contains(warnings[1], "new") || !strings.Contains(warnings[1], "candidate only") {
		t.Fatalf("candidate-only warning wrong: %q", warnings[1])
	}

	_, _, regressed = diff(base, cand, gate{Threshold: 0.10, Strict: true})
	if !regressed {
		t.Fatal("-strict must turn a missing baseline experiment into a regression")
	}
}

func TestAllocGate(t *testing.T) {
	base := withAllocs(mkReport("fig7", 1000.0, "fig8", 1000.0), 1<<30, 1<<30)
	grown := withAllocs(mkReport("fig7", 1000.0, "fig8", 1000.0), 1<<30, 3<<30)

	// The alloc gate is opt-in: without -allocs the growth only reports.
	rows, _, regressed := diff(base, grown, gate{Threshold: 0.10})
	if regressed {
		t.Fatalf("alloc growth must not gate when -allocs is off: %+v", rows)
	}
	if !rows[1].HasAlloc || math.Abs(rows[1].AllocPct-200.0) > 1e-9 {
		t.Fatalf("fig8 alloc delta wrong: %+v", rows[1])
	}

	rows, _, regressed = diff(base, grown, gate{Threshold: 0.10, Allocs: 0.10})
	if !regressed || !rows[1].AllocBad || rows[1].Regressed {
		t.Fatalf("-allocs 0.10 must gate a 3x alloc growth (and not as wall-clock): %+v", rows[1])
	}
	if rows[0].AllocBad {
		t.Fatalf("unchanged allocs must pass the gate: %+v", rows[0])
	}

	// Reports without memstats (old schema) never trip the alloc gate.
	old := mkReport("fig7", 1000.0, "fig8", 1000.0)
	rows, _, regressed = diff(old, grown, gate{Threshold: 0.10, Allocs: 0.10})
	if regressed {
		t.Fatalf("alloc gate must skip rows without baseline memstats: %+v", rows)
	}
	if rows[0].HasAlloc {
		t.Fatalf("HasAlloc must require both sides: %+v", rows[0])
	}
}

func TestEnvWarnings(t *testing.T) {
	mk := func(gogc int, memlimit int64, pgo string) *report {
		return &report{GOGC: gogc, GOMemLimit: memlimit, PGO: pgo}
	}
	off := int64(math.MaxInt64)
	cases := []struct {
		name       string
		base, cand *report
		want       []string // substrings, one per expected warning, in order
	}{
		{"identical", mk(100, off, ""), mk(100, off, ""), nil},
		{"gogc differs", mk(100, off, ""), mk(400, off, ""), []string{"gogc=100, candidate with gogc=400"}},
		{"gomemlimit differs", mk(100, off, ""), mk(100, 4<<30, ""), []string{"gomemlimit=off, candidate with gomemlimit=4294967296"}},
		{"pgo vs plain", mk(100, off, "cpu.pprof"), mk(100, off, ""), []string{"baseline built with PGO profile cpu.pprof, candidate without PGO"}},
		{"plain vs pgo", mk(100, off, ""), mk(100, off, "cpu.pprof"), []string{"candidate with PGO profile cpu.pprof"}},
		{"different profiles", mk(100, off, "a.pprof"), mk(100, off, "b.pprof"), []string{"PGO differs"}},
		{"old report predates gc fields", mk(0, 0, ""), mk(400, 4<<30, ""), nil},
		{"everything differs", mk(100, off, ""), mk(400, 4<<30, "cpu.pprof"), []string{"gogc differs", "gomemlimit differs", "PGO differs"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warns := envWarnings(tc.base, tc.cand)
			if len(warns) != len(tc.want) {
				t.Fatalf("got %d warnings, want %d: %v", len(warns), len(tc.want), warns)
			}
			for i, sub := range tc.want {
				if !strings.Contains(warns[i], sub) {
					t.Errorf("warning %d = %q, want substring %q", i, warns[i], sub)
				}
			}
		})
	}
}

func TestShardVehicleWarnings(t *testing.T) {
	mk := func(shards int, noShard bool) *report {
		return &report{GOGC: 100, GOMemLimit: math.MaxInt64, Shards: shards, NoShard: noShard}
	}
	cases := []struct {
		name       string
		base, cand *report
		want       []string
	}{
		{"both classic", mk(0, false), mk(0, false), nil},
		{"both sharded", mk(4, false), mk(4, false), nil},
		{"shard count differs", mk(0, false), mk(4, false), []string{"shards=0, candidate with shards=4"}},
		{"vehicle differs", mk(4, false), mk(4, true), []string{"baseline noshard=false, candidate noshard=true"}},
		{"count trumps vehicle", mk(2, false), mk(4, true), []string{"shard count differs"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warns := envWarnings(tc.base, tc.cand)
			if len(warns) != len(tc.want) {
				t.Fatalf("got %d warnings, want %d: %v", len(warns), len(tc.want), warns)
			}
			for i, sub := range tc.want {
				if !strings.Contains(warns[i], sub) {
					t.Errorf("warning %d = %q, want substring %q", i, warns[i], sub)
				}
			}
		})
	}
}

func TestItersVehicleWarnings(t *testing.T) {
	mk := func(scale int, noExtrap bool) *report {
		return &report{GOGC: 100, GOMemLimit: math.MaxInt64, ItersScale: scale, NoExtrap: noExtrap}
	}
	cases := []struct {
		name       string
		base, cand *report
		want       []string
	}{
		{"identical", mk(1, false), mk(1, false), nil},
		{"old report means 1x", mk(0, false), mk(1, false), nil},
		{"iters-scale differs", mk(1, false), mk(32, false), []string{"baseline ran at 1x iterations, candidate at 32x"}},
		{"extrapolation differs", mk(1, false), mk(1, true), []string{"baseline noextrap=false, candidate noextrap=true"}},
		{"both differ", mk(0, true), mk(32, false), []string{"iters-scale differs", "extrapolation differs"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warns := envWarnings(tc.base, tc.cand)
			if len(warns) != len(tc.want) {
				t.Fatalf("got %d warnings, want %d: %v", len(warns), len(tc.want), warns)
			}
			for i, sub := range tc.want {
				if !strings.Contains(warns[i], sub) {
					t.Errorf("warning %d = %q, want substring %q", i, warns[i], sub)
				}
			}
		})
	}
}

// withIters sets iters/iters_scale on the report's experiments in order.
func withIters(r *report, scale int, iters ...int) *report {
	for i, n := range iters {
		r.Experiments[i].Iters = n
		r.Experiments[i].ItersScale = scale
	}
	return r
}

func TestPerExperimentItersWarnings(t *testing.T) {
	base := withIters(mkReport("fig7", 1000.0, "fig8", 1000.0), 1, 4, 4)

	// Same iteration counts: quiet.
	if _, warnings, _ := diff(base, withIters(mkReport("fig7", 1000.0, "fig8", 1000.0), 1, 4, 4), gate{Threshold: 0.10}); len(warnings) != 0 {
		t.Fatalf("matching iters warned: %v", warnings)
	}

	// A row measured at a different iteration count warns but never gates.
	cand := withIters(mkReport("fig7", 1000.0, "fig8", 1000.0), 32, 4, 128)
	_, warnings, regressed := diff(base, cand, gate{Threshold: 0.10})
	if regressed {
		t.Fatal("iters mismatch must not gate")
	}
	var itersWarn, scaleWarn int
	for _, w := range warnings {
		if strings.Contains(w, "iteration count differs") {
			itersWarn++
			if !strings.Contains(w, "fig8") || !strings.Contains(w, "baseline measured 4 iters, candidate 128") {
				t.Fatalf("iters warning wrong: %q", w)
			}
		}
		if strings.Contains(w, "iters-scale differs") {
			scaleWarn++
		}
	}
	if itersWarn != 1 {
		t.Fatalf("got %d iteration-count warnings, want 1: %v", itersWarn, warnings)
	}
	if scaleWarn != 2 { // both rows changed scale 1 -> 32
		t.Fatalf("got %d per-row iters-scale warnings, want 2: %v", scaleWarn, warnings)
	}

	// Old-schema rows (no iters recorded) stay quiet.
	old := mkReport("fig7", 1000.0, "fig8", 1000.0)
	if _, warnings, _ := diff(old, withIters(mkReport("fig7", 1000.0, "fig8", 1000.0), 1, 4, 4), gate{Threshold: 0.10}); len(warnings) != 0 {
		t.Fatalf("old-schema rows warned: %v", warnings)
	}
}

func TestDiffPercentDelta(t *testing.T) {
	base := mkReport("fig7", 2000.0, "fig8", 800.0)
	cand := mkReport("fig7", 1000.0, "fig8", 1000.0)
	rows, _, _ := diff(base, cand, gate{Threshold: 0.50})
	if rows[0].Pct != -50.0 {
		t.Fatalf("fig7 pct = %v, want -50", rows[0].Pct)
	}
	if rows[1].Pct != 25.0 {
		t.Fatalf("fig8 pct = %v, want +25", rows[1].Pct)
	}
}

func TestTotalDelta(t *testing.T) {
	mk := func(total float64) *report { return &report{TotalMS: total} }
	cases := []struct {
		name       string
		base, cand *report
		threshold  float64
		pct        float64
		regressed  bool
		ok         bool
	}{
		{"faster", mk(2000), mk(1000), 0.10, -50, false, true},
		{"within threshold", mk(1000), mk(1050), 0.10, 5, false, true},
		{"beyond threshold", mk(1000), mk(1200), 0.10, 20, true, true},
		{"baseline predates total_ms", mk(0), mk(1000), 0.10, 0, false, false},
		{"candidate missing total_ms", mk(1000), mk(0), 0.10, 0, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pct, regressed, ok := totalDelta(tc.base, tc.cand, tc.threshold)
			if math.Abs(pct-tc.pct) > 1e-9 || regressed != tc.regressed || ok != tc.ok {
				t.Fatalf("totalDelta = (%v, %v, %v), want (%v, %v, %v)",
					pct, regressed, ok, tc.pct, tc.regressed, tc.ok)
			}
		})
	}
}

func TestDiffRowShape(t *testing.T) {
	base := mkReport("fig7", 2000.0, "gone", 100.0)
	cand := mkReport("fig7", 1000.0, "new", 50.0)
	rows, _, _ := diff(base, cand, gate{Threshold: 0.10})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].Ratio != 0.5 || rows[0].Regressed {
		t.Fatalf("fig7 row wrong: %+v", rows[0])
	}
	if !rows[1].Missing || rows[1].Regressed {
		t.Fatalf("gone row wrong (missing warns, not regresses): %+v", rows[1])
	}
	if rows[2].ID != "new" || rows[2].Regressed || rows[2].BaseMS != 0 {
		t.Fatalf("new row wrong: %+v", rows[2])
	}
}

// withPeakHeap sets peak_heap_inuse_bytes on the report's experiments in
// order.
func withPeakHeap(r *report, bytes ...uint64) *report {
	for i, b := range bytes {
		r.Experiments[i].PeakHeap = b
	}
	return r
}

func TestPeakHeapWarning(t *testing.T) {
	base := withPeakHeap(mkReport("fig7", 1000.0, "figs", 1000.0), 1<<30, 1<<30)
	grown := withPeakHeap(mkReport("fig7", 1000.0, "figs", 1000.0), 1<<30, 2<<30)

	// Peak-heap growth warns but never gates.
	_, warnings, regressed := diff(base, grown, gate{Threshold: 0.10, Allocs: 0.10})
	if regressed {
		t.Fatal("peak-heap growth must not gate")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "figs") ||
		!strings.Contains(warnings[0], "peak heap grew") {
		t.Fatalf("got warnings %v, want one figs peak-heap warning", warnings)
	}

	// Growth within the 10% allowance stays quiet.
	small := withPeakHeap(mkReport("fig7", 1000.0, "figs", 1000.0), 1<<30, 1<<30+1<<25) // +3.1%
	if _, warnings, _ := diff(base, small, gate{Threshold: 0.10}); len(warnings) != 0 {
		t.Fatalf("3%% peak-heap growth warned: %v", warnings)
	}

	// Reports without the field (old schema) never warn.
	old := mkReport("fig7", 1000.0, "figs", 1000.0)
	if _, warnings, _ := diff(old, grown, gate{Threshold: 0.10}); len(warnings) != 0 {
		t.Fatalf("peak-heap warning must require both sides: %v", warnings)
	}
}
