// Command bgpsimd serves the simulator over HTTP with a content-addressed
// result cache: the kernel is bit-deterministic, so every measurement has
// exactly one answer forever, and answering a repeated request is a map
// lookup instead of a multi-second simulation.
//
//	bgpsimd -addr :8377 -workers 4 -cache-file /var/tmp/bgpsimd.json
//
//	curl -s localhost:8377/v1/figure?id=fig6\&quick=1      # cold: simulates
//	curl -s localhost:8377/v1/figure?id=fig6\&quick=1      # warm: cache hit
//	curl -s localhost:8377/metrics | grep bgpsimd_cache
//
// Endpoints: GET /healthz, GET /metrics (Prometheus text format),
// POST /v1/run (one measurement), POST /v1/sweep (an algorithms x sizes
// grid), GET /v1/figure?id=fig6..fig10|table1 (a whole paper figure,
// decomposed into per-cell cache keys so partial overlap still hits).
//
// -cache-file persists the store as JSON on shutdown (SIGINT/SIGTERM) and
// reloads it on start; entries are content-verified on load, so a stale or
// corrupted file degrades to cache misses, never to wrong answers.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"bgpcoll/internal/coll"
	"bgpcoll/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 2, "simulation worker goroutines")
	queue := flag.Int("queue", 64, "max cells queued for execution (excess requests get 429)")
	perClient := flag.Int("per-client", 32, "max outstanding cells per client host")
	cacheFile := flag.String("cache-file", "", "persist/load the result store as JSON at this path")
	reference := flag.Bool("reference", false, "run kernels in the reference vehicle (identical virtual times)")
	flag.Parse()

	coll.Register()
	store := serve.NewStore()
	if *cacheFile != "" {
		if n, err := store.Load(*cacheFile); err == nil {
			fmt.Printf("bgpsimd: loaded %d cached measurements from %s\n", n, *cacheFile)
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "bgpsimd:", err)
			os.Exit(1)
		}
	}

	srv := serve.New(store, serve.Config{
		Workers:   *workers,
		QueueCap:  *queue,
		ClientCap: *perClient,
		Reference: *reference,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Serve until SIGINT/SIGTERM, then stop the listener, join the worker
	// pool, and persist the store.
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	fmt.Printf("bgpsimd: listening on %s (%d workers, queue %d)\n", *addr, *workers, *queue)
	select {
	case sig := <-sigc:
		fmt.Printf("bgpsimd: %v, shutting down\n", sig)
		httpSrv.Close()
		<-errc
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bgpsimd:", err)
		srv.Close()
		os.Exit(1)
	}
	srv.Close()

	if *cacheFile != "" {
		if err := store.Save(*cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "bgpsimd: saving cache:", err)
			os.Exit(1)
		}
		fmt.Printf("bgpsimd: saved %d measurements to %s\n", store.Len(), *cacheFile)
	}
}
