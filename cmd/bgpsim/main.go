// Command bgpsim runs one collective operation on a simulated BG/P partition
// and reports its virtual-time cost, bandwidth, and resource utilization.
//
//	bgpsim -op bcast -algo torus.shaddr -size 2M -torus 8x8x8
//	bgpsim -op allreduce -algo allreduce.current -size 4M -mode smp
//	bgpsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpcoll"
	"bgpcoll/internal/bench"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/serve/reqspec"
	"bgpcoll/internal/trace"
)

func main() {
	op := flag.String("op", "bcast", "collective: bcast or allreduce")
	algo := flag.String("algo", "", "algorithm name (empty = automatic selection)")
	size := flag.String("size", "1M", "message size (bytes, K or M suffix)")
	torus := flag.String("torus", "8x8x8", "torus dimensions DXxDYxDZ")
	mode := flag.String("mode", "quad", "node mode: smp, dual or quad")
	iters := flag.Int("iters", 1, "micro-benchmark iterations")
	root := flag.Int("root", 0, "broadcast root rank")
	list := flag.Bool("list", false, "list registered algorithms and exit")
	traceN := flag.Int("trace", 0, "record and dump up to N schedule events")
	flag.Parse()

	// Registering through the facade keeps the registry initialized once.
	if _, err := bgpcoll.NewJob(bgpcoll.DefaultConfig()); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Println("broadcast algorithms:")
		for _, n := range reqspec.BcastAlgorithms() {
			fmt.Println("  ", n)
		}
		fmt.Println("allreduce algorithms:")
		for _, n := range reqspec.AllreduceAlgorithms() {
			fmt.Println("  ", n)
		}
		return
	}

	msg, err := reqspec.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(2)
	}
	dx, dy, dz, err := reqspec.ParseTorus(*torus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(2)
	}
	nodeMode, err := reqspec.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(2)
	}
	cfg := hw.DefaultConfig()
	cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = dx, dy, dz
	cfg.Mode = nodeMode
	cfg.Functional = false

	w, err := mpi.NewWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
	if *traceN > 0 {
		w.M.Trace = trace.New(*traceN)
	}
	var elapsed bgpcoll.Time
	switch *op {
	case "bcast":
		w.Tunables.Bcast = *algo
		if *algo == "" {
			w.Tunables = mpi.DefaultTunables()
		}
		_, err = w.Run(func(r *mpi.Rank) {
			buf := r.NewBuf(msg)
			var sum bgpcoll.Time
			for i := 0; i < *iters; i++ {
				r.Barrier()
				start := r.Now()
				r.Bcast(buf, *root)
				sum += r.Now() - start
			}
			if avg := sum / bgpcoll.Time(*iters); avg > elapsed {
				elapsed = avg
			}
		})
	case "allreduce":
		if *algo != "" {
			w.Tunables.Allreduce = *algo
		}
		if msg%data.Float64Len != 0 {
			fmt.Fprintln(os.Stderr, "bgpsim: allreduce size must be a multiple of 8")
			os.Exit(2)
		}
		_, err = w.Run(func(r *mpi.Rank) {
			send := r.NewBuf(msg)
			recv := r.NewBuf(msg)
			var sum bgpcoll.Time
			for i := 0; i < *iters; i++ {
				r.Barrier()
				start := r.Now()
				r.AllreduceSum(send, recv)
				sum += r.Now() - start
			}
			if avg := sum / bgpcoll.Time(*iters); avg > elapsed {
				elapsed = avg
			}
		})
	default:
		fmt.Fprintf(os.Stderr, "bgpsim: unknown op %q\n", *op)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}

	fmt.Printf("partition:  %s torus, %s mode, %d ranks\n", cfg.Torus, cfg.Mode, cfg.Ranks())
	fmt.Printf("operation:  %s %s, %s\n", *op, bench.SizeLabel(msg), orAuto(*algo))
	fmt.Printf("latency:    %v\n", elapsed)
	fmt.Printf("bandwidth:  %.1f MB/s\n", bench.BandwidthMBs(msg, elapsed))
	fmt.Println()
	fmt.Print(w.M.Report(elapsed))
	if *traceN > 0 {
		fmt.Println()
		w.M.Trace.Dump(os.Stdout, *traceN)
	}
}

func orAuto(algo string) string {
	if algo == "" {
		return "algorithm: auto"
	}
	return "algorithm: " + algo
}
