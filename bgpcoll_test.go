package bgpcoll_test

import (
	"testing"

	"bgpcoll"
	"bgpcoll/internal/data"
)

func TestJobBroadcastEndToEnd(t *testing.T) {
	job, err := bgpcoll.NewJob(bgpcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const msg = 64 << 10
	elapsed, err := job.Run(func(r *bgpcoll.Rank) {
		buf := r.NewBuf(msg)
		if r.Rank() == 0 {
			buf.Fill(7)
		}
		r.Bcast(buf, 0)
		want := data.New(msg, true)
		want.Fill(7)
		if !data.Equal(buf, want) {
			t.Errorf("rank %d corrupted", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestJobAllreduceEndToEnd(t *testing.T) {
	job, err := bgpcoll.NewJob(bgpcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const doubles = 256
	size := job.World.Size()
	if _, err := job.Run(func(r *bgpcoll.Rank) {
		send := r.NewBuf(doubles * data.Float64Len)
		recv := r.NewBuf(doubles * data.Float64Len)
		vals := make([]float64, doubles)
		for i := range vals {
			vals[i] = 1
		}
		send.PutFloats(vals)
		r.AllreduceSum(send, recv)
		if got := recv.Floats()[0]; got != float64(size) {
			t.Errorf("rank %d sum = %v, want %d", r.Rank(), got, size)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestJobTunables(t *testing.T) {
	job, err := bgpcoll.NewJob(bgpcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tun := job.World.Tunables
	tun.Bcast = bgpcoll.BcastTorusFIFO
	job.Tune(tun)
	if _, err := job.Run(func(r *bgpcoll.Rank) {
		buf := r.NewBuf(8 << 10)
		r.Bcast(buf, 0)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigPresets(t *testing.T) {
	if bgpcoll.MidplaneConfig().Nodes() != 512 {
		t.Error("midplane preset wrong")
	}
	cfg, err := bgpcoll.RackConfig(2)
	if err != nil || cfg.Ranks() != 8192 {
		t.Errorf("2-rack preset: %v ranks, err %v", cfg.Ranks(), err)
	}
	if bgpcoll.Quad.ProcsPerNode() != 4 || bgpcoll.SMP.ProcsPerNode() != 1 || bgpcoll.Dual.ProcsPerNode() != 2 {
		t.Error("mode constants wrong")
	}
}

func TestNewRealBuffer(t *testing.T) {
	raw := []byte{1, 2, 3}
	b := bgpcoll.NewReal(raw)
	if !b.IsReal() || b.Len() != 3 {
		t.Fatal("NewReal wrapper broken")
	}
}
