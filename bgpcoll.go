// Package bgpcoll simulates the Blue Gene/P supercomputer's communication
// stack and reproduces the MPI collective optimizations of Mamidala et al.,
// "Optimizing MPI Collectives Using Efficient Intra-node Communication
// Techniques over the Blue Gene/P Supercomputer" (IBM RC25088 / IPDPS 2011).
//
// A Job models one MPI application on a simulated partition: a 3D torus of
// quad-core nodes with DMA engines and a hardware collective network, with
// one simulated process per MPI rank. Rank programs use an MPI-like API
// (Bcast, AllreduceSum, Barrier, Send/Recv, Gather, Allgather) whose
// collective algorithms are the paper's: the production DMA-based designs
// and the proposed shared-memory, shared-address, and core-specialization
// designs.
//
//	cfg := bgpcoll.DefaultConfig()
//	job, err := bgpcoll.NewJob(cfg)
//	...
//	elapsed, err := job.Run(func(r *bgpcoll.Rank) {
//		buf := r.NewBuf(1 << 20)
//		if r.Rank() == 0 {
//			buf.Fill(42)
//		}
//		r.Bcast(buf, 0)
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure and table.
package bgpcoll

import (
	"sync"

	"bgpcoll/internal/coll"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// Config describes a simulated partition: torus geometry, operating mode,
// hardware parameters, and whether buffers carry real data.
type Config = hw.Config

// Mode is the node operating mode (SMP, Dual, Quad).
type Mode = hw.Mode

// Operating modes.
const (
	SMP  = hw.SMP
	Dual = hw.Dual
	Quad = hw.Quad
)

// Rank is one MPI process in a running job.
type Rank = mpi.Rank

// Tunables select collective algorithms by name.
type Tunables = mpi.Tunables

// Buf is a message buffer (real bytes or a timing-only phantom).
type Buf = data.Buf

// Request is an outstanding nonblocking point-to-point operation.
type Request = mpi.Request

// Time is virtual time in picoseconds.
type Time = sim.Time

// DefaultConfig returns a small quad-mode test partition (32 nodes, 128
// ranks) with real data buffers.
func DefaultConfig() Config { return hw.DefaultConfig() }

// MidplaneConfig returns a 512-node (2048-rank) quad partition for
// bandwidth studies.
func MidplaneConfig() Config { return hw.MidplaneConfig() }

// RackConfig returns the paper's evaluation geometries (1, 2 or 4 racks).
func RackConfig(racks int) (Config, error) { return hw.RackConfig(racks) }

// Algorithm names accepted by Tunables (see package coll for semantics).
const (
	BcastTreeSMP          = mpi.BcastTreeSMP
	BcastTreeShmem        = mpi.BcastTreeShmem
	BcastTreeDMAFIFO      = mpi.BcastTreeDMAFIFO
	BcastTreeDMADirect    = mpi.BcastTreeDMADirect
	BcastTreeShaddr       = mpi.BcastTreeShaddr
	BcastTorusDirectPut   = mpi.BcastTorusDirectPut
	BcastTorusFIFO        = mpi.BcastTorusFIFO
	BcastTorusShaddr      = mpi.BcastTorusShaddr
	AllreduceTorusCurrent = mpi.AllreduceTorusCurrent
	AllreduceTorusNew     = mpi.AllreduceTorusNew
)

var registerOnce sync.Once

// Job is one MPI application on a simulated partition.
type Job struct {
	World *mpi.World
}

// NewJob builds the partition and runtime for cfg.
func NewJob(cfg Config) (*Job, error) {
	registerOnce.Do(coll.Register)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{World: w}, nil
}

// Tune replaces the job's algorithm selection.
func (j *Job) Tune(t Tunables) { j.World.Tunables = t }

// Run executes fn on every rank and returns the consumed virtual time.
func (j *Job) Run(fn func(r *Rank)) (Time, error) { return j.World.Run(fn) }

// NewReal wraps a byte slice as a message buffer.
func NewReal(b []byte) Buf { return data.Real(b) }
