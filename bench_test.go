package bgpcoll_test

// One benchmark per figure/table of the paper's evaluation (§VI). Each
// benchmark regenerates its artifact on the simulated machine and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem -benchtime=1x
//
// reproduces the whole study. Benchmarks default to trimmed message sweeps
// (Options.Quick); set BGPCOLL_BENCH_FULL=1 for the paper's full sweeps.
// cmd/bgpbench prints the complete tables.

import (
	"os"
	"testing"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
)

func benchOptions() bench.Options {
	return bench.Options{Quick: os.Getenv("BGPCOLL_BENCH_FULL") == ""}
}

func init() { coll.Register() }

// reportRatio emits a/b under the given metric name.
func reportRatio(b *testing.B, fig *bench.Figure, num, den string, size int, name string) {
	b.Helper()
	n, ok1 := fig.Value(num, size)
	d, ok2 := fig.Value(den, size)
	if !ok1 || !ok2 || d == 0 {
		b.Fatalf("missing series for ratio %s (%v %v)", name, ok1, ok2)
	}
	b.ReportMetric(n/d, name)
}

// BenchmarkFig6TreeBcastLatency regenerates Fig. 6: short-message broadcast
// latency over the collective network. Key paper shape: the quad-mode
// shared-memory algorithm costs only a fraction of a microsecond over the
// SMP-mode hardware broadcast and beats the DMA-based algorithm.
func BenchmarkFig6TreeBcastLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		shmem, _ := fig.Value("CollectiveNetwork+Shmem", 8)
		smp, _ := fig.Value("CollectiveNetwork (SMP)", 8)
		b.ReportMetric(shmem, "shmem_us@8B")
		b.ReportMetric(shmem-smp, "overhead_us@8B")
	}
}

// BenchmarkFig7TreeBcastBandwidth regenerates Fig. 7: collective-network
// broadcast bandwidth. Key paper shape: the shared-address algorithm is the
// best quad algorithm (~+45% over the DMA algorithms at 128K) and tracks the
// SMP reference.
func BenchmarkFig7TreeBcastBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		shaddr, _ := fig.Value("CollectiveNetwork+Shaddr", 128<<10)
		b.ReportMetric(shaddr, "shaddr_MBs@128K")
		reportRatio(b, fig, "CollectiveNetwork+Shaddr", "CollectiveNetwork+DMA Direct Put",
			128<<10, "speedup@128K")
	}
}

// BenchmarkFig8SyscallOverhead regenerates Fig. 8: the cost of repeated
// process-window system calls without the mapping cache.
func BenchmarkFig8SyscallOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, fig, "CollectiveNetwork+Shaddr+caching",
			"CollectiveNetwork+Shaddr+nocaching", 1<<10, "caching_gain@1K")
	}
}

// BenchmarkFig9TreeBcastScaling regenerates Fig. 9: shared-address broadcast
// bandwidth from 1024 to 8192 ranks. Key paper shape: the curves coincide —
// the collective network scales.
func BenchmarkFig9TreeBcastScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		small, _ := fig.Value("CollectiveNetwork+Shaddr(1024)", 4<<20)
		large, _ := fig.Value("CollectiveNetwork+Shaddr(8192)", 4<<20)
		if small == 0 {
			b.Fatal("missing scaling series")
		}
		b.ReportMetric(large/small, "scale8x_retention@4M")
	}
}

// BenchmarkFig10TorusBcastBandwidth regenerates Fig. 10: torus broadcast
// bandwidth. Key paper shapes: shared-address ~2.9x the quad direct-put at
// 2M, the Bcast FIFO ~1.4x, and the shared-address curve dips at 4M when the
// working set exceeds the 8 MB L2.
func BenchmarkFig10TorusBcastBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, fig, "Torus+Shaddr", "Torus Direct Put", 2<<20, "shaddr_speedup@2M")
		reportRatio(b, fig, "Torus+FIFO", "Torus Direct Put", 2<<20, "fifo_speedup@2M")
		s2, _ := fig.Value("Torus+Shaddr", 2<<20)
		s4, _ := fig.Value("Torus+Shaddr", 4<<20)
		if s2 > 0 {
			b.ReportMetric(s4/s2, "l2_dip@4M")
		}
	}
}

// BenchmarkTable1AllreduceThroughput regenerates Table I: torus allreduce
// throughput, proposed vs current algorithm. Key paper shape: the proposed
// algorithm wins, most at large double counts (~+33% at 512K doubles).
func BenchmarkTable1AllreduceThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, fig, "New (MB/s)", "Current (MB/s)", 512<<10, "new_speedup@512Kdoubles")
	}
}

// BenchmarkAblationColors sweeps the multi-color route count of the torus
// broadcast (DESIGN.md ablation): bandwidth should scale with the colors.
func BenchmarkAblationColors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationColors(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		one, _ := fig.Value("Torus+Shaddr(2M)", 1)
		six, _ := fig.Value("Torus+Shaddr(2M)", 6)
		if one > 0 {
			b.ReportMetric(six/one, "six_color_scaling")
		}
	}
}

// BenchmarkAblationChunk sweeps the software pipeline width.
func BenchmarkAblationChunk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationChunk(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		small, _ := fig.Value("Torus+Shaddr(2M)", 2<<10)
		huge, _ := fig.Value("Torus+Shaddr(2M)", 256<<10)
		if huge > 0 {
			b.ReportMetric(small/huge, "pipelining_gain")
		}
	}
}

// BenchmarkAblationFIFO sweeps the Bcast FIFO depth.
func BenchmarkAblationFIFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationFIFO(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		shallow, _ := fig.Value("Torus+FIFO(2M)", 2)
		deep, _ := fig.Value("Torus+FIFO(2M)", 64)
		if shallow > 0 {
			b.ReportMetric(deep/shallow, "depth_gain")
		}
	}
}
