// Lockfree: the paper's intra-node concurrent structures (§IV) running on
// real goroutines — no simulator. The Bcast FIFO broadcasts a stream from a
// producer to three consumers using only atomic fetch-and-increment, exactly
// the "any platform supporting fetch and increment" mechanism the paper
// proposes; software message counters pipeline a direct-copy broadcast the
// shared-address way.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bgpcoll/internal/shm"
)

const (
	readers   = 3 // the three peer processes of a quad-mode node
	slotBytes = 8 << 10
	slots     = 16
	totalMB   = 64
)

func bcastFIFODemo() {
	fifo := shm.NewBcastFIFO(slots, slotBytes, readers)
	payload := make([]byte, slotBytes)
	items := totalMB << 20 / slotBytes

	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		r := fifo.NewReader()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dst := make([]byte, slotBytes)
			for i := 0; i < items; i++ {
				n, conn := r.ReadInto(dst)
				if conn != i%6 || n != slotBytes {
					panic(fmt.Sprintf("reader %d: bad item %d", id, i))
				}
			}
		}(rd)
	}

	start := time.Now()
	for i := 0; i < items; i++ {
		// Multiplex six "connections" through one FIFO, as the torus
		// broadcast multiplexes its six colors (§V-A).
		fifo.Enqueue(payload, i%6)
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("BcastFIFO: %d MB through %d slots to %d readers in %v (%.0f MB/s per reader)\n",
		totalMB, slots, readers, el.Round(time.Millisecond),
		float64(totalMB)/el.Seconds())
}

func msgCounterDemo() {
	// The shared-address pattern: a master "receives" chunks into its
	// buffer and publishes cumulative byte counts; peers wait on the
	// counter and copy arrived ranges directly.
	const chunk = 64 << 10
	const total = totalMB << 20
	master := make([]byte, total)
	var counter shm.MsgCounter
	var done shm.Completion

	for p := 0; p < readers; p++ {
		go func() {
			dst := make([]byte, total)
			var seen int64
			for seen < total {
				avail := counter.Wait(seen + 1)
				copy(dst[seen:avail], master[seen:avail])
				seen = avail
			}
			done.Signal()
		}()
	}

	start := time.Now()
	for off := 0; off < total; off += chunk {
		// Simulate network arrival of the next chunk, then mirror the
		// hardware counter into the software counter.
		counter.Publish(chunk)
	}
	done.Wait(readers)
	el := time.Since(start)
	fmt.Printf("MsgCounter: %d MB direct-copied by %d peers in %v (%.0f MB/s per peer)\n",
		totalMB, readers, el.Round(time.Millisecond), float64(totalMB)/el.Seconds())
}

func ptpFIFODemo() {
	fifo := shm.NewPtPFIFO(64)
	const items = 200000
	var consumers sync.WaitGroup
	var consumed atomic.Int64
	for c := 0; c < 4; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				msg := fifo.Dequeue()
				if msg.Connection < 0 {
					return // poison pill: this consumer is done
				}
				consumed.Add(1)
			}
		}()
	}
	start := time.Now()
	var producers sync.WaitGroup
	for p := 0; p < 2; p++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for i := 0; i < items/2; i++ {
				fifo.Enqueue(shm.Message{Connection: i})
			}
		}()
	}
	producers.Wait()
	// All real items are enqueued (FIFO order): one pill per consumer.
	for c := 0; c < 4; c++ {
		fifo.Enqueue(shm.Message{Connection: -1})
	}
	consumers.Wait()
	el := time.Since(start)
	if consumed.Load() != items {
		panic(fmt.Sprintf("consumed %d of %d items", consumed.Load(), items))
	}
	fmt.Printf("PtPFIFO: %d messages, 2 producers, 4 consumers in %v (%.1f M msgs/s)\n",
		items, el.Round(time.Millisecond), float64(items)/el.Seconds()/1e6)
}

func main() {
	bcastFIFODemo()
	msgCounterDemo()
	ptpFIFODemo()
}
