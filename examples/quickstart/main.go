// Quickstart: broadcast a buffer across a small simulated BG/P partition
// with two different algorithms and compare their virtual-time cost.
package main

import (
	"fmt"
	"log"

	"bgpcoll"
)

func main() {
	cfg := bgpcoll.DefaultConfig() // 4x4x2 torus, quad mode: 128 ranks
	const msg = 1 << 20

	for _, algo := range []string{
		bgpcoll.BcastTorusDirectPut, // the production DMA-only broadcast
		bgpcoll.BcastTorusShaddr,    // the paper's shared-address broadcast
	} {
		job, err := bgpcoll.NewJob(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := job.World.Tunables
		t.Bcast = algo
		job.Tune(t)

		var bcastTime bgpcoll.Time
		_, err = job.Run(func(r *bgpcoll.Rank) {
			buf := r.NewBuf(msg)
			if r.Rank() == 0 {
				buf.Fill(2024) // the payload every rank must end up with
			}
			r.Barrier()
			start := r.Now()
			r.Bcast(buf, 0)
			if d := r.Now() - start; d > bcastTime {
				bcastTime = d
			}

			// Verify delivery: every rank checks its bytes.
			want := r.NewBuf(msg)
			want.Fill(2024)
			for i, b := range buf.Bytes() {
				if b != want.Bytes()[i] {
					log.Fatalf("rank %d: byte %d corrupted", r.Rank(), i)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		mbs := float64(msg) / bcastTime.Seconds() / 1e6
		fmt.Printf("%-18s 1MB broadcast to %d ranks: %v (%.0f MB/s)\n",
			algo, cfg.Ranks(), bcastTime, mbs)
	}
}
