// Heat3d: a 3D Jacobi heat-diffusion solver on the simulated machine — the
// kind of scientific workload whose inner loop the paper's collectives
// accelerate. The global grid is decomposed into Z-slabs, one per rank;
// every iteration exchanges halo planes with slab neighbors over the torus
// point-to-point substrate and computes the global residual with the
// optimized MPI_Allreduce.
package main

import (
	"fmt"
	"log"
	"math"

	"bgpcoll"
	"bgpcoll/internal/data"
)

const (
	nx, ny = 24, 24 // grid points per horizontal plane
	slabNZ = 4      // Z planes per rank
	iters  = 40
)

type slab struct {
	cur, next [][]float64 // [plane][nx*ny], including two halo planes
}

func newSlab() *slab {
	s := &slab{}
	for p := 0; p < slabNZ+2; p++ {
		s.cur = append(s.cur, make([]float64, nx*ny))
		s.next = append(s.next, make([]float64, nx*ny))
	}
	return s
}

// step relaxes the interior and returns the local squared-residual.
func (s *slab) step() float64 {
	res := 0.0
	for p := 1; p <= slabNZ; p++ {
		for y := 1; y < ny-1; y++ {
			for x := 1; x < nx-1; x++ {
				i := y*nx + x
				v := (s.cur[p][i-1] + s.cur[p][i+1] +
					s.cur[p][i-nx] + s.cur[p][i+nx] +
					s.cur[p-1][i] + s.cur[p+1][i]) / 6
				d := v - s.cur[p][i]
				res += d * d
				s.next[p][i] = v
			}
		}
	}
	s.cur, s.next = s.next, s.cur
	return res
}

func planeBuf(plane []float64) bgpcoll.Buf {
	b := data.Real(make([]byte, len(plane)*data.Float64Len))
	b.PutFloats(plane)
	return b
}

func main() {
	cfg := bgpcoll.DefaultConfig()
	cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = 2, 2, 2 // 32 ranks
	job, err := bgpcoll.NewJob(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var finalResidual float64
	elapsed, err := job.Run(func(r *bgpcoll.Rank) {
		s := newSlab()
		// Hot boundary on the bottom-most slab.
		if r.Rank() == 0 {
			for i := range s.cur[1] {
				s.cur[1][i] = 100
			}
		}
		up, down := r.Rank()+1, r.Rank()-1
		resBuf := r.NewBuf(data.Float64Len)
		sumBuf := r.NewBuf(data.Float64Len)

		for it := 0; it < iters; it++ {
			// Halo exchange with slab neighbors. Nonblocking requests let
			// all four transfers progress concurrently, like MPI_Isend/
			// MPI_Irecv halo exchanges in production stencil codes.
			var reqs []*bgpcoll.Request
			inUp := r.NewBuf(nx * ny * data.Float64Len)
			inDown := r.NewBuf(nx * ny * data.Float64Len)
			if up < r.Size() {
				reqs = append(reqs,
					r.Irecv(up, inUp, 2*it),
					r.Isend(up, planeBuf(s.cur[slabNZ]), 2*it+1))
			}
			if down >= 0 {
				reqs = append(reqs,
					r.Irecv(down, inDown, 2*it+1),
					r.Isend(down, planeBuf(s.cur[1]), 2*it))
			}
			r.WaitAll(reqs...)
			if up < r.Size() {
				copy(s.cur[slabNZ+1], inUp.Floats())
			}
			if down >= 0 {
				copy(s.cur[0], inDown.Floats())
			}

			local := s.step()
			resBuf.PutFloats([]float64{local})
			r.AllreduceSum(resBuf, sumBuf)
			if r.Rank() == 0 && (it+1)%10 == 0 {
				finalResidual = math.Sqrt(sumBuf.Floats()[0])
				fmt.Printf("iter %3d: global residual %.6f (virtual t=%v)\n",
					it+1, finalResidual, r.Now())
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat3d: %d ranks, %d iterations in %v of machine time; final residual %.6f\n",
		cfg.Ranks(), iters, elapsed, finalResidual)
}
