// Sweep: explore the tree-vs-torus crossover that drives the runtime's
// automatic broadcast selection. For each message size, both shared-address
// algorithms are timed on the same partition; the crossover is where the
// torus's six-link bandwidth overtakes the collective network's lower
// latency — the reason BG/P routes short broadcasts to the tree and large
// ones to the torus (paper §V).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bgpcoll"
	"bgpcoll/internal/bench"
	"bgpcoll/internal/mpi"
)

func main() {
	dx := flag.Int("dx", 8, "torus X dimension")
	dy := flag.Int("dy", 8, "torus Y dimension")
	dz := flag.Int("dz", 4, "torus Z dimension")
	flag.Parse()

	cfg := bgpcoll.DefaultConfig()
	cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = *dx, *dy, *dz
	cfg.Functional = false
	if _, err := bgpcoll.NewJob(cfg); err != nil { // registers algorithms
		log.Fatal(err)
	}

	sizes := []int{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		128 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20,
	}
	fmt.Printf("Broadcast crossover on a %s quad partition (%d ranks)\n\n", cfg.Torus, cfg.Ranks())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\ttree.shaddr\ttorus.shaddr\twinner")
	crossover := -1
	for _, msg := range sizes {
		tTree, err := bench.MeasureBcast(cfg, mpi.BcastTreeShaddr, msg, 3)
		if err != nil {
			log.Fatal(err)
		}
		tTorus, err := bench.MeasureBcast(cfg, mpi.BcastTorusShaddr, msg, 3)
		if err != nil {
			log.Fatal(err)
		}
		winner := "tree"
		if tTorus < tTree {
			winner = "torus"
			if crossover < 0 {
				crossover = msg
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%s\n", bench.SizeLabel(msg), tTree, tTorus, winner)
	}
	tw.Flush()
	if crossover > 0 {
		fmt.Printf("\ntorus overtakes the collective network at ~%s\n", bench.SizeLabel(crossover))
	} else {
		fmt.Println("\nthe collective network won at every size on this partition")
	}
}
